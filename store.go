package inplace

// The public face of the columnar tile store (internal/tilestore): a
// chunked on-disk dataset whose ingest runs the paper's skinny AoS→SoA
// specialization per chunk through this package's planner cache and
// wisdom tables, and whose reads reassemble rows with the inverse
// conversion. The wrapper contributes exactly two things the internal
// package cannot have (it would be an import cycle): the typed
// transpose engine, and wisdom-backed chunk sizing via TuneStore.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"inplace/internal/mathutil"
	"inplace/internal/parallel"
	"inplace/internal/tilestore"
	"inplace/internal/tune"
)

// DatasetStats is a frozen snapshot of one dataset handle's counters.
type DatasetStats = tilestore.Stats

// Tile-store sentinels, re-exported so callers branch on this package
// alone.
var (
	// ErrCorruptChunk reports a column segment whose checksums or frame
	// identity fail validation.
	ErrCorruptChunk = tilestore.ErrCorruptChunk
	// ErrBadSchema reports an invalid dataset schema or a damaged
	// dataset header or meta file.
	ErrBadSchema = tilestore.ErrBadSchema
	// ErrColumnRange reports a projection column or row window outside
	// the dataset.
	ErrColumnRange = tilestore.ErrColumnRange
	// ErrCacheBudget reports a block-cache capacity below one column
	// segment.
	ErrCacheBudget = tilestore.ErrCacheBudget
	// ErrNotSealed reports an Open of a dataset whose ingest never
	// completed; such a dataset is absent as far as readers go.
	ErrNotSealed = tilestore.ErrNotSealed
)

// DatasetOptions parameterizes CreateDataset/OpenDataset.
type DatasetOptions struct {
	// ChunkRows is the chunk height in records; 0 consults the wisdom
	// table (per Tuning) and falls back to a cache-sized heuristic.
	ChunkRows int

	// CacheBytes is the block-cache capacity; 0 picks the store
	// default (32 MiB, raised to one segment when segments are larger).
	CacheBytes int64

	// MemBudget is the ingest scratch ceiling; chunks above it spill
	// through the out-of-core pipeline. 0 picks the store default.
	MemBudget int64

	// Workers is the transform parallelism; 0 means GOMAXPROCS.
	Workers int

	// Label namespaces the dataset's counters on the shared stats
	// registry (store_<label>_*); "" derives it from the directory.
	Label string

	// Tuning controls consultation of the process wisdom table for a
	// zero ChunkRows, exactly as Options.Tuning does for the planner.
	Tuning Tuning
}

// Dataset is a handle to a columnar dataset: ingesting after
// CreateDataset, reading after OpenDataset. Read handles are safe for
// concurrent use.
type Dataset struct {
	ds *tilestore.Dataset
}

// CreateDataset initializes a dataset of rows records × fields fields of
// elemSize-byte elements under dir and returns an ingest handle. The
// dataset stays invisible to OpenDataset until Ingest completes — a
// kill mid-ingest leaves it absent, never torn.
func CreateDataset(dir string, rows, fields, elemSize int, opts ...DatasetOptions) (*Dataset, error) {
	var o DatasetOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	chunkRows, err := resolveChunkRows(rows, fields, elemSize, o)
	if err != nil {
		return nil, err
	}
	ds, err := tilestore.Create(dir, tilestore.Schema{
		Rows: rows, Fields: fields, ElemSize: elemSize, ChunkRows: chunkRows,
	}, storeOptions(o))
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// OpenDataset opens a sealed dataset for reading. The schema (chunk
// height included) comes from the dataset itself; only cache, budget and
// metering options apply.
func OpenDataset(dir string, opts ...DatasetOptions) (*Dataset, error) {
	var o DatasetOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	ds, err := tilestore.Open(dir, storeOptions(o))
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// Ingest consumes exactly rows*fields*elemSize bytes of row-major AoS
// records from r, lays every column out contiguously on disk, and seals
// the dataset.
func (d *Dataset) Ingest(r io.Reader) error { return d.ds.Ingest(r) }

// Scan reads full records [rowLo, rowHi) into dst as row-major AoS
// bytes; dst must hold exactly (rowHi-rowLo)*fields*elemSize bytes.
func (d *Dataset) Scan(dst []byte, rowLo, rowHi int) error {
	return pubStoreErr(d.ds.ScanRows(dst, rowLo, rowHi))
}

// Project gathers the chosen columns of rows [rowLo, rowHi) into dst as
// row-major records of len(cols) fields, touching only the column
// segments it needs; dst must hold (rowHi-rowLo)*len(cols)*elemSize
// bytes. On cache-resident chunks the call is allocation-free.
func (d *Dataset) Project(dst []byte, cols []int, rowLo, rowHi int) error {
	return pubStoreErr(d.ds.Project(dst, cols, rowLo, rowHi))
}

// pubStoreErr maps the store's buffer-length sentinel onto this
// package's ErrLength (the two packages each own one; callers branch on
// the public name) while keeping the internal chain intact. Nil and
// every other error pass through untouched, so the warm success path
// costs nothing.
func pubStoreErr(err error) error {
	if err != nil && errors.Is(err, tilestore.ErrLength) {
		return fmt.Errorf("%w: %w", ErrLength, err)
	}
	return err
}

// Verify re-reads every segment and checks all checksums.
func (d *Dataset) Verify() error { return d.ds.Verify() }

// Rows, Fields and ElemSize return the dataset's schema; ChunkRows its
// (possibly tuned) chunk height.
func (d *Dataset) Rows() int      { return d.ds.Schema().Rows }
func (d *Dataset) Fields() int    { return d.ds.Schema().Fields }
func (d *Dataset) ElemSize() int  { return d.ds.Schema().ElemSize }
func (d *Dataset) ChunkRows() int { return d.ds.Schema().ChunkRows }

// Stats snapshots the handle's cache and I/O counters.
func (d *Dataset) Stats() DatasetStats { return d.ds.Stats() }

// Close releases the handle.
func (d *Dataset) Close() error { return d.ds.Close() }

// storeOptions maps public options onto the internal store, wiring the
// typed engine.
func storeOptions(o DatasetOptions) tilestore.Options {
	return tilestore.Options{
		CacheBytes: o.CacheBytes,
		MemBudget:  o.MemBudget,
		Workers:    o.Workers,
		Label:      o.Label,
		Engine:     datasetEngine(o.Workers),
	}
}

// datasetEngine is the typed transpose the store runs per chunk: the
// planner-cache-backed AOSToSOA/SOAToAOS of this package over an
// aligned reinterpretation of the chunk bytes. Widths without a native
// type (or misaligned buffers, which the store never produces) are
// declined with ErrEngineElem and the store falls back to its built-in
// opaque-record path.
func datasetEngine(workers int) tilestore.Engine {
	opt := Options{Workers: workers}
	return tilestore.Engine{
		AOSToSOA: func(data []byte, count, fields, elem int) error {
			return viewConvert(data, count, fields, elem, opt, false)
		},
		SOAToAOS: func(data []byte, count, fields, elem int) error {
			return viewConvert(data, count, fields, elem, opt, true)
		},
	}
}

// viewConvert dispatches one chunk conversion onto the typed engine.
func viewConvert(data []byte, count, fields, elem int, o Options, inverse bool) error {
	switch elem {
	case 1:
		return runConvert(data, count, fields, o, inverse)
	case 2:
		if v, ok := byteView[uint16](data); ok {
			return runConvert(v, count, fields, o, inverse)
		}
	case 4:
		if v, ok := byteView[uint32](data); ok {
			return runConvert(v, count, fields, o, inverse)
		}
	case 8:
		if v, ok := byteView[uint64](data); ok {
			return runConvert(v, count, fields, o, inverse)
		}
	}
	return tilestore.ErrEngineElem
}

func runConvert[T any](data []T, count, fields int, o Options, inverse bool) error {
	if inverse {
		return SOAToAOS(data, count, fields, o)
	}
	return AOSToSOA(data, count, fields, o)
}

// byteView reinterprets raw as []T when the base pointer is aligned and
// the length divides evenly (the same zero-copy idiom as the transpose
// service's data plane).
func byteView[T any](raw []byte) ([]T, bool) {
	var t T
	sz := int(unsafe.Sizeof(t))
	if len(raw) == 0 || len(raw)%sz != 0 {
		return nil, false
	}
	if uintptr(unsafe.Pointer(&raw[0]))%uintptr(unsafe.Alignof(t)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&raw[0])), len(raw)/sz), true
}

// resolveChunkRows picks the chunk height: explicit > wisdom > the
// static heuristic.
func resolveChunkRows(rows, fields, elemSize int, o DatasetOptions) (int, error) {
	if o.ChunkRows != 0 {
		return o.ChunkRows, nil
	}
	if o.Tuning != WisdomOff {
		if d, ok := lookupStoreWisdom(rows, fields, elemSize); ok {
			return d.ChunkRows, nil
		}
		if o.Tuning == WisdomRequired {
			return 0, fmt.Errorf("%w (%d fields, %d-byte elements, tile store)", ErrNoWisdom, fields, elemSize)
		}
	}
	return defaultChunkRows(rows, fields, elemSize), nil
}

// defaultChunkRows targets chunks of ~4 MiB of AoS input — small enough
// that the per-chunk transpose stays resident under any sane budget,
// tall enough that segments are worth a seek — clamped to the dataset.
func defaultChunkRows(rows, fields, elemSize int) int {
	const targetChunk = 4 << 20
	rowBytes, ok := mathutil.CheckedMul(fields, elemSize)
	if !ok || rowBytes <= 0 {
		return 1
	}
	cr := targetChunk / rowBytes
	if cr < 1 {
		cr = 1
	}
	if cr > rows && rows > 0 {
		cr = rows
	}
	return cr
}

// lookupStoreWisdom returns the recorded tile-store decision for a
// schema and row-count class.
func lookupStoreWisdom(rows, fields, elemSize int) (tune.StoreDecision, bool) {
	k := tune.StoreKey{Fields: fields, ElemSize: elemSize, RowsLog2: tune.BudgetLog2(int64(rows))}
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.LookupStore(k)
}

func storeStoreWisdom(k tune.StoreKey, d tune.StoreDecision) {
	wisdomTab.mu.Lock()
	wisdomTab.t.StoreStore(k, d)
	wisdomTab.mu.Unlock()
}

// StoreTuneResult reports the winning ingest configuration of a
// TuneStore call.
type StoreTuneResult struct {
	Rows, Fields int
	ElemSize     int

	ChunkRows int
	Workers   int
	GBps      float64 // ingest throughput of the winner (AoS bytes in)
}

// String summarizes the result.
func (r StoreTuneResult) String() string {
	return fmt.Sprintf("store tuned %d rows × %d fields (%dB): chunk_rows=%d workers=%d (%.2f GB/s)",
		r.Rows, r.Fields, r.ElemSize, r.ChunkRows, r.Workers, r.GBps)
}

// TuneStore measures tile-store ingest across chunk heights (and worker
// counts) for a schema by building scratch datasets of the real shape in
// a temp directory, records the winner in the process wisdom table under
// the row count's binary magnitude class, and returns it. Subsequent
// CreateDataset calls for a matching schema (with DatasetOptions.Tuning
// at WisdomAuto and ChunkRows zero) use the measured chunk height;
// SaveWisdom persists it alongside the transpose decisions.
//
// The call writes (and removes) scratch datasets of rows*fields*elemSize
// bytes each; expect one full ingest per candidate.
func TuneStore(rows, fields, elemSize int, cfgs ...TuneConfig) (StoreTuneResult, error) {
	var c TuneConfig
	if len(cfgs) > 0 {
		c = cfgs[0]
	}
	if rows <= 0 || fields <= 0 || elemSize <= 0 {
		return StoreTuneResult{}, shapeErr(rows, fields)
	}
	rowBytes, ok := mathutil.CheckedMul(fields, elemSize)
	if !ok {
		return StoreTuneResult{}, overflowErr(rows, fields)
	}
	total, ok := mathutil.CheckedMul(rows, rowBytes)
	if !ok {
		return StoreTuneResult{}, overflowErr(rows, fields)
	}

	// Candidate chunk heights: the heuristic and its neighbors two
	// octaves either way, deduplicated after clamping.
	base := defaultChunkRows(rows, fields, elemSize)
	var cands []int
	seen := map[int]bool{}
	for _, cr := range []int{base / 4, base / 2, base, base * 2, base * 4} {
		if cr < 1 {
			cr = 1
		}
		if cr > rows {
			cr = rows
		}
		if !seen[cr] {
			seen[cr] = true
			cands = append(cands, cr)
		}
	}
	workers := parallel.Workers(c.Workers)
	reps := 1
	if c.Reps > 0 {
		reps = c.Reps
	}

	scratch, err := os.MkdirTemp("", "xposestore-tune-*")
	if err != nil {
		return StoreTuneResult{}, err
	}
	defer os.RemoveAll(scratch)

	input := make([]byte, total)
	for i := range input {
		input[i] = byte(i*2654435761 + i>>8)
	}

	best := StoreTuneResult{Rows: rows, Fields: fields, ElemSize: elemSize}
	for ci, chunkRows := range cands {
		var bestRun float64
		for rep := 0; rep < reps; rep++ {
			dir := filepath.Join(scratch, fmt.Sprintf("cand-%d-%d", ci, rep))
			ds, err := tilestore.Create(dir, tilestore.Schema{
				Rows: rows, Fields: fields, ElemSize: elemSize, ChunkRows: chunkRows,
			}, tilestore.Options{Workers: workers, Engine: datasetEngine(workers), Label: "tune"})
			if err != nil {
				return StoreTuneResult{}, err
			}
			start := time.Now()
			err = ds.Ingest(newSliceReader(input))
			elapsed := time.Since(start)
			ds.Close()
			if rmErr := os.RemoveAll(dir); err == nil {
				err = rmErr
			}
			if err != nil {
				return StoreTuneResult{}, err
			}
			if gbps := float64(total) / elapsed.Seconds() / 1e9; gbps > bestRun {
				bestRun = gbps
			}
		}
		if bestRun > best.GBps {
			best.GBps = bestRun
			best.ChunkRows = chunkRows
			best.Workers = workers
		}
	}
	storeStoreWisdom(
		tune.StoreKey{Fields: fields, ElemSize: elemSize, RowsLog2: tune.BudgetLog2(int64(rows))},
		tune.StoreDecision{ChunkRows: best.ChunkRows, Workers: best.Workers, GBps: best.GBps},
	)
	return best, nil
}

// newSliceReader avoids bytes.NewReader's escape of the backing array
// bookkeeping between reps — a plain cursor over a shared slice.
func newSliceReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
	n int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.n >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.n:])
	r.n += n
	return n, nil
}
