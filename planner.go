package inplace

import (
	"reflect"
	"sync"

	"inplace/internal/core"
	"inplace/internal/parallel"
	"inplace/internal/stats"
)

// Planner binds a Plan to an element type and owns everything repeated
// executions of the same shape can share: the precomputed pass schedule
// (chunk partitions, rotation closures, fixed-point divisors), the
// lazily-built cycle decomposition of the shared row permutation q, a
// recycled scratch arena sized for the plan, and — for multi-worker
// plans — the process-wide persistent worker pool. After the first
// Execute has warmed the arena, subsequent Executes perform no heap
// allocation at all.
//
// A Planner is safe for concurrent use: simultaneous Executes on
// distinct buffers each draw a private scratch state from the arena.
type Planner[T any] struct {
	p   *Plan
	eng *core.Engine[T]
}

// NewPlanner validates the shape and precomputes an execution plan for
// transposing rows×cols arrays of T repeatedly. The variadic opts
// follows TransposeBatch: at most one Options value is honoured.
//
// NewPlanner knows the element type, so it consults the process wisdom
// table (see Tune, LoadWisdom and Options.Tuning): matching wisdom
// resolves every option left at its zero value to the measured-optimal
// choice before the static heuristics fill in the rest.
func NewPlanner[T any](rows, cols int, opts ...Options) (*Planner[T], error) {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	p, err := newPlanElem(rows, cols, o, int(reflect.TypeFor[T]().Size()))
	if err != nil {
		return nil, err
	}
	return newPlanner[T](p), nil
}

func newPlanner[T any](p *Plan) *Planner[T] {
	op := p.opts
	if parallel.Workers(op.Workers) > 1 {
		// Multi-worker plans dispatch passes onto the persistent
		// process-wide pool instead of spawning goroutines per pass.
		op.Pool = parallel.Shared()
	}
	return &Planner[T]{p: p, eng: core.NewEngine[T](core.NewSchedule(p.plan, op))}
}

// Execute transposes data in place according to the plan. data must
// hold Rows()*Cols() elements; afterwards it holds the transposed
// array (cols×rows in the plan's order convention).
//
//xpose:hotpath
func (pl *Planner[T]) Execute(data []T) error {
	if len(data) != pl.p.size {
		return lengthErr(len(data), pl.p.size)
	}
	if pl.p.useC2R {
		pl.eng.C2R(data)
	} else {
		pl.eng.R2C(data)
	}
	return nil
}

// Plan returns the underlying shape plan.
func (pl *Planner[T]) Plan() *Plan { return pl.p }

// Rows returns the logical row count the planner transposes from.
func (pl *Planner[T]) Rows() int { return pl.p.rows }

// Cols returns the logical column count the planner transposes from.
func (pl *Planner[T]) Cols() int { return pl.p.cols }

// String describes the planner.
func (pl *Planner[T]) String() string { return pl.p.String() }

// --- Keyed planner cache ---
//
// Transpose, TransposeWith and TransposeBatch route through a small
// process-wide cache of planners keyed by shape, options and element
// type, so ad-hoc callers that transpose the same shape repeatedly get
// the amortized hot path without managing Planner lifetimes themselves.

// plannerKey identifies one cached planner. Options is a comparable
// struct of plain ints, so the whole key is comparable.
type plannerKey struct {
	rows, cols int
	opts       Options
	typ        reflect.Type
}

// plannerCacheCap bounds the cache; beyond it the oldest entries are
// evicted FIFO. Scratch arenas are garbage-collectable sync.Pools, so
// an evicted planner's memory is reclaimed once callers drop it.
const plannerCacheCap = 128

var plannerCache struct {
	mu    sync.RWMutex
	m     map[plannerKey]any
	order []plannerKey
}

// Cache counters, registered on the process-wide stats registry (the
// same surface the out-of-core engine meters with) so exporters like
// the xposed /stats endpoint enumerate them without knowing this
// package. Read-only outside the package via PlannerCacheStats; atomic
// because hits are recorded under the read lock.
var (
	cacheHits      = stats.Default().Counter("planner_cache_hits")
	cacheMisses    = stats.Default().Counter("planner_cache_misses")
	cacheEvictions = stats.Default().Counter("planner_cache_evictions")
)

// CacheStats is a snapshot of the planner cache counters.
type CacheStats struct {
	// Hits counts lookups served by a cached planner.
	Hits uint64
	// Misses counts lookups that had to build a planner.
	Misses uint64
	// Evictions counts entries dropped under capacity pressure. Flushes
	// (wisdom mutations) are not evictions.
	Evictions uint64
}

// PlannerCacheStats returns a snapshot of the process planner cache
// counters: how the Transpose/TransposeWith/TransposeBatch fast path is
// behaving. Counters are cumulative for the process; compute deltas to
// meter a workload.
func PlannerCacheStats() CacheStats {
	return CacheStats{
		Hits:      cacheHits.Load(),
		Misses:    cacheMisses.Load(),
		Evictions: cacheEvictions.Load(),
	}
}

// flushPlannerCache drops every cached planner — 2D and permutation
// alike. Called when the wisdom table changes, since cached planners
// embed decisions resolved against the old wisdom. Flushed entries do
// not count as evictions.
func flushPlannerCache() {
	plannerCache.mu.Lock()
	plannerCache.m = nil
	plannerCache.order = nil
	plannerCache.mu.Unlock()
	flushPermCache()
}

// plannerFor returns the cached planner for (rows, cols, o, T),
// building and inserting it on first use.
func plannerFor[T any](rows, cols int, o Options) (*Planner[T], error) {
	key := plannerKey{rows: rows, cols: cols, opts: o, typ: reflect.TypeFor[T]()}
	plannerCache.mu.RLock()
	v, ok := plannerCache.m[key]
	plannerCache.mu.RUnlock()
	if ok {
		cacheHits.Inc()
		return v.(*Planner[T]), nil
	}
	cacheMisses.Inc()
	pl, err := NewPlanner[T](rows, cols, o)
	if err != nil {
		return nil, err
	}
	plannerCache.mu.Lock()
	defer plannerCache.mu.Unlock()
	if v, ok := plannerCache.m[key]; ok {
		// Another goroutine built the same planner concurrently; keep
		// the published one so all callers share its arena.
		return v.(*Planner[T]), nil
	}
	if plannerCache.m == nil {
		plannerCache.m = make(map[plannerKey]any)
	}
	for len(plannerCache.order) >= plannerCacheCap {
		delete(plannerCache.m, plannerCache.order[0])
		plannerCache.order = plannerCache.order[1:]
		cacheEvictions.Inc()
	}
	plannerCache.m[key] = pl
	plannerCache.order = append(plannerCache.order, key)
	return pl, nil
}
