package inplace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"inplace"
	"inplace/internal/core"
	"inplace/internal/stats"
	"inplace/internal/tune"
)

// benchsuiteShapes mirrors the tiny-scale benchsuite workload: the
// Figure 4/5 landscape grid crossed with itself, plus skinny AoS-like
// shapes from the Figure 7 workload and the tuned experiment's set.
func benchsuiteShapes() [][2]int {
	grid := []int{16, 32, 64} // bench.LandscapeGrid(TinyScale)
	var shapes [][2]int
	for _, m := range grid {
		for _, n := range grid {
			shapes = append(shapes, [2]int{m, n})
		}
	}
	shapes = append(shapes, [2]int{512, 6}, [2]int{48, 48}, [2]int{32, 96}, [2]int{1000, 4})
	return shapes
}

// medianExecNs measures the steady-state Execute of one planner: the
// median over several samples, each batching enough runs to outlast
// timer granularity.
func medianExecNs(t *testing.T, pl *inplace.Planner[uint64], data []uint64) float64 {
	t.Helper()
	if err := pl.Execute(data); err != nil { // warm arena + cycles
		t.Fatal(err)
	}
	const itersPerSample, samples = 8, 9
	var xs []float64
	for s := 0; s < samples; s++ {
		start := time.Now()
		for i := 0; i < itersPerSample; i++ {
			if err := pl.Execute(data); err != nil {
				t.Fatal(err)
			}
		}
		xs = append(xs, float64(time.Since(start).Nanoseconds())/itersPerSample)
	}
	return stats.Median(xs)
}

// TestTunedNeverMeasurablySlower is the tuner's contract: for every
// shape in the (tiny-scale) benchsuite workload, a planner resolved
// through warm wisdom must not select a variant measurably slower than
// the static heuristic's choice. "Measurably" leaves generous room for
// scheduling noise — the tuner seeds its search with the heuristic
// candidate, so a genuinely slower selection can only come from
// measurement error, and the margin below is far beyond what the
// median-of-samples measurement produces.
func TestTunedNeverMeasurablySlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	for _, sh := range benchsuiteShapes() {
		m, n := sh[0], sh[1]
		if _, err := inplace.Tune[uint64](m, n, inplace.TuneConfig{
			Workers: 1, Reps: 3, MaxCandidateTime: 10 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		tuned, err := inplace.NewPlanner[uint64](m, n, inplace.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		heur, err := inplace.NewPlanner[uint64](m, n, inplace.Options{Workers: 1, Tuning: inplace.WisdomOff})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]uint64, m*n)
		for i := range data {
			data[i] = uint64(i)
		}
		tunedNs := medianExecNs(t, tuned, data)
		heurNs := medianExecNs(t, heur, data)
		// 1.5x plus an absolute floor for the tiniest shapes, where a
		// microsecond of jitter is a large relative error.
		if tunedNs > heurNs*1.5+50_000 {
			t.Errorf("%dx%d: tuned plan %v is measurably slower than heuristic %v (%.0fns vs %.0fns)",
				m, n, tuned.Plan(), heur.Plan(), tunedNs, heurNs)
		}
	}
}

// TestWisdomFileChangesPlannerSelection is the cmd/xposetune
// acceptance path: produce a wisdom file from a tuning run whose
// measurement disagrees with the static heuristic, prove the file
// round-trips, and prove that loading it changes the planner's variant
// selection for that shape — while still transposing correctly.
//
// Measurement is injected (tune.Config.Cost) so the disagreement is
// deterministic on any host; the file format and planner plumbing under
// test are exactly what the CLI drives.
func TestWisdomFileChangesPlannerSelection(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()
	const rows, cols = 120, 96

	// The heuristic picks R2C cache-aware for this shape (rows > cols);
	// force the measurement to crown C2R scatter instead.
	d, err := tune.TuneFor[uint64](rows, cols, tune.Config{
		MaxWorkers: 1,
		Cost: func(c tune.Candidate) float64 {
			if c.C2R && c.Variant == core.Scatter {
				return 1
			}
			return 1000
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Variant != "scatter" || !d.C2R {
		t.Fatalf("cost injection failed: decision %+v", d)
	}

	// Write the wisdom file the way xposetune does and check it
	// round-trips exactly.
	tbl := tune.NewTable()
	tbl.Store(tune.Key{Rows: rows, Cols: cols, ElemSize: 8, MaxWorkers: 1}, d)
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := tune.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(reloaded) {
		t.Fatal("wisdom file did not round-trip")
	}
	path := filepath.Join(t.TempDir(), "wisdom.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Baseline: the heuristic's selection.
	before, err := inplace.NewPlanner[uint64](rows, cols, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if before.Plan().Method() != inplace.CacheAware || before.Plan().UsesC2R() {
		t.Fatalf("unexpected heuristic baseline %v", before.Plan())
	}

	// Loading the wisdom demonstrably changes the selection.
	if err := inplace.LoadWisdom(path); err != nil {
		t.Fatal(err)
	}
	after, err := inplace.NewPlanner[uint64](rows, cols, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.Plan().Method() != inplace.Algorithm1 || !after.Plan().UsesC2R() {
		t.Fatalf("wisdom did not change selection: %v", after.Plan())
	}

	// And the changed plan still computes the right answer.
	data := make([]uint64, rows*cols)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	want := transposeRef(data, rows, cols)
	if err := after.Execute(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("wisdom-selected plan transposed incorrectly at %d", i)
		}
	}
}
