package inplace

import (
	"errors"
	"math"
	"testing"
)

// The validation layer must reject any shape whose element count
// overflows int before a single index is computed; these are regression
// tests for the guards the indexoverflow analyzer requires on every
// public entry point.

func TestNewPlanOverflow(t *testing.T) {
	big := math.MaxInt/2 + 1
	if _, err := NewPlan(big, 2, Options{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("NewPlan(%d, 2) err = %v, want ErrOverflow", big, err)
	}
	if _, err := NewPlan(2, big, Options{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("NewPlan(2, %d) err = %v, want ErrOverflow", big, err)
	}
	// MaxInt x 1 is representable and must still be accepted by the
	// shape check itself (allocation is the caller's problem).
	if _, err := checkShape(math.MaxInt, 1); err != nil {
		t.Fatalf("checkShape(MaxInt, 1) err = %v, want nil", err)
	}
}

func TestTransposeOverflow(t *testing.T) {
	big := math.MaxInt/2 + 1
	data := make([]uint32, 4)
	if err := Transpose(data, big, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Transpose err = %v, want ErrOverflow", err)
	}
	if err := C2R(data, big, 2, Options{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("C2R err = %v, want ErrOverflow", err)
	}
	if err := R2C(data, 2, big, Options{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("R2C err = %v, want ErrOverflow", err)
	}
	if err := AOSToSOA(data, big, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("AOSToSOA err = %v, want ErrOverflow", err)
	}
	if err := SOAToAOS(data, big, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("SOAToAOS err = %v, want ErrOverflow", err)
	}
	if _, err := NewPlanner[uint32](big, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("NewPlanner err = %v, want ErrOverflow", err)
	}
}

func TestTransposeBatchOverflow(t *testing.T) {
	data := make([]uint32, 12)
	// Per-matrix shape overflows.
	big := math.MaxInt/2 + 1
	if err := TransposeBatch(data, 1, big, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("TransposeBatch shape err = %v, want ErrOverflow", err)
	}
	// Per-matrix shape fits but count*stride overflows.
	if err := TransposeBatch(data, math.MaxInt/4, 2, 3); !errors.Is(err, ErrOverflow) {
		t.Fatalf("TransposeBatch batch err = %v, want ErrOverflow", err)
	}
}

func TestShapeAndLengthErrors(t *testing.T) {
	data := make([]uint32, 6)
	if err := Transpose(data, -2, 3); !errors.Is(err, ErrShape) {
		t.Fatalf("negative rows err = %v, want ErrShape", err)
	}
	if err := Transpose(data, 2, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("zero cols err = %v, want ErrShape", err)
	}
	if err := Transpose(data, 4, 3); !errors.Is(err, ErrLength) {
		t.Fatalf("short buffer err = %v, want ErrLength", err)
	}
}
