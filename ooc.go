package inplace

import (
	"fmt"
	"io"
	"os"
	"time"

	"inplace/internal/mathutil"
	"inplace/internal/ooc"
	"inplace/internal/parallel"
	"inplace/internal/tune"
)

// This file is the public face of the out-of-core engine (internal/ooc):
// transposing matrices that live on storage rather than in memory, under
// a caller-specified scratch budget. The schedule is the same three-pass
// decomposition as the in-memory engine, lifted from cache blocks to
// storage segments; the budget floor is the decomposition's O(max(m,n))
// auxiliary bound made literal.

// Storage is the backend an out-of-core transposition operates on:
// stateless random-access reads and writes. *os.File satisfies it, as
// does any ranged-request adapter over an object store. If the backend
// additionally implements Sync() error, the engine syncs data before
// journal commits, upgrading the journal to a true write-ahead barrier.
type Storage interface {
	io.ReaderAt
	io.WriterAt
}

// DefaultOOCBudget is the scratch ceiling used when OOCOptions.Budget is
// zero: 256 MiB.
const DefaultOOCBudget int64 = 256 << 20

// Typed failures of the out-of-core engine, re-exported for errors.Is
// without importing internal packages.
var (
	// ErrOOCShortRead: a backend read returned fewer bytes than
	// requested after the configured retries.
	ErrOOCShortRead = ooc.ErrShortRead
	// ErrOOCShortWrite: a backend write accepted fewer bytes than
	// requested after the configured retries.
	ErrOOCShortWrite = ooc.ErrShortWrite
	// ErrOOCCorruptSegment: a verified segment did not match the
	// checksum committed in the journal.
	ErrOOCCorruptSegment = ooc.ErrCorruptSegment
	// ErrOOCBudget: the memory budget is below the schedule floor of
	// 2*max(rows,cols) elements.
	ErrOOCBudget = ooc.ErrBudget
	// ErrOOCJournalMismatch: a resume journal records a different
	// geometry than the requested run.
	ErrOOCJournalMismatch = ooc.ErrJournalMismatch
	// ErrOOCJournalCorrupt: the journal header fails validation.
	ErrOOCJournalCorrupt = ooc.ErrJournalCorrupt
	// ErrOOCNoJournal: Resume or Verify requested without a Journal.
	ErrOOCNoJournal = ooc.ErrNoJournal
)

// OOCStats is the counter snapshot an out-of-core run returns: I/O
// volume and call counts, segment pipeline progress, prefetch
// effectiveness, journal traffic and the peak resident scratch.
type OOCStats = ooc.Stats

// OOCOptions parameterizes an out-of-core transposition. The zero value
// is usable: a 256 MiB budget, heuristic direction, derived segment
// schedule, GOMAXPROCS transform workers, no journal.
type OOCOptions struct {
	// Budget is the scratch-memory ceiling in bytes; 0 means
	// DefaultOOCBudget. Budgets below 2*max(rows,cols)*elemSize fail
	// with ErrOOCBudget.
	Budget int64

	// Workers is the transform parallelism within a resident segment;
	// 0 resolves through wisdom, then GOMAXPROCS.
	Workers int

	// Depth is the pipeline depth (in-flight segments across the
	// prefetch/transform/write stages); 0 resolves through wisdom,
	// then 3, degraded automatically under tight budgets.
	Depth int

	// SegmentBytes overrides the derived segment size; 0 resolves
	// through wisdom, then Budget/(2*Depth).
	SegmentBytes int64

	// Direction optionally forces the C2R or R2C pipeline, as for the
	// in-memory planner.
	Direction Direction

	// Journal enables crash-safe progress on the given backend: undo
	// images and checksummed commits make an interrupted run resumable
	// and Verify possible. Nil disables journaling.
	Journal Storage

	// Resume replays the Journal instead of starting fresh: committed
	// segments are skipped, in-flight segments rolled back from their
	// undo images and re-executed.
	Resume bool

	// Verify re-reads the final pass after completion and checks every
	// segment against its committed checksum.
	Verify bool

	// Retries is how many times a failed backend call is re-issued
	// before the run fails; 0 means 2.
	Retries int

	// Tuning controls consultation of the process wisdom table for
	// Workers, Depth and SegmentBytes left at zero, exactly as
	// Options.Tuning does for the in-memory planner.
	Tuning Tuning
}

// oocConfig resolves public options (wisdom included) into the internal
// engine config.
func oocConfig(rows, cols, elemSize int, o OOCOptions) (ooc.Config, error) {
	if _, err := checkShape(rows, cols); err != nil {
		return ooc.Config{}, err
	}
	if elemSize <= 0 {
		return ooc.Config{}, shapeErr(rows, cols)
	}
	if o.Budget <= 0 {
		o.Budget = DefaultOOCBudget
	}
	if o.Tuning != WisdomOff {
		if d, ok := lookupOOCWisdom(rows, cols, elemSize, o.Budget); ok {
			if o.SegmentBytes == 0 {
				o.SegmentBytes = d.SegmentBytes
			}
			if o.Depth == 0 {
				o.Depth = d.Depth
			}
			if o.Workers == 0 {
				o.Workers = d.Workers
			}
		} else if o.Tuning == WisdomRequired {
			return ooc.Config{}, fmt.Errorf("%w (%dx%d, %d-byte elements, out-of-core)", ErrNoWisdom, rows, cols, elemSize)
		}
	}
	dir := ooc.DirAuto
	switch o.Direction {
	case ForceC2R:
		dir = ooc.DirC2R
	case ForceR2C:
		dir = ooc.DirR2C
	}
	return ooc.Config{
		Rows: rows, Cols: cols, ElemSize: elemSize,
		Budget:       o.Budget,
		Workers:      o.Workers,
		Depth:        o.Depth,
		SegmentBytes: o.SegmentBytes,
		Dir:          dir,
		Journal:      o.Journal,
		Resume:       o.Resume,
		Verify:       o.Verify,
		Retries:      o.Retries,
	}, nil
}

// TransposeFile transposes the row-major rows×cols matrix of
// elemSize-byte elements stored on data, in place on the backend,
// within the options' memory budget. Afterwards data holds the
// row-major cols×rows transpose. The element size is arbitrary (any
// positive byte width): the engine permutes opaque fixed-size records.
//
// With OOCOptions.Journal set, progress is crash-safe: re-running with
// Resume converges to the identical result from any interruption point.
func TransposeFile(data Storage, rows, cols, elemSize int, opts ...OOCOptions) (OOCStats, error) {
	var o OOCOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg, err := oocConfig(rows, cols, elemSize, o)
	if err != nil {
		return OOCStats{}, err
	}
	return ooc.Run(data, cfg)
}

// OOCPlanner carries a validated out-of-core schedule for transposing
// one shape repeatedly (or resuming one interrupted run). The schedule
// resolution — budget check, wisdom consultation, segment derivation —
// happens once at construction.
type OOCPlanner struct {
	rows, cols, elem int
	cfg              ooc.Config
}

// NewOOCPlanner validates the shape, budget and options and resolves
// the segment schedule without touching any backend.
func NewOOCPlanner(rows, cols, elemSize int, opts ...OOCOptions) (*OOCPlanner, error) {
	var o OOCOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg, err := oocConfig(rows, cols, elemSize, o)
	if err != nil {
		return nil, err
	}
	if err := ooc.Validate(cfg); err != nil {
		return nil, err
	}
	return &OOCPlanner{rows: rows, cols: cols, elem: elemSize, cfg: cfg}, nil
}

// Transpose runs the planned transposition on data.
func (p *OOCPlanner) Transpose(data Storage) (OOCStats, error) {
	return ooc.Run(data, p.cfg)
}

// Budget returns the resolved scratch-memory ceiling in bytes.
func (p *OOCPlanner) Budget() int64 { return p.cfg.Budget }

// OOCMinBudget returns the smallest legal budget for a shape:
// 2*max(rows,cols)*elemSize bytes, the decomposition's O(max(m,n))
// auxiliary bound.
func OOCMinBudget(rows, cols, elemSize int) (int64, error) {
	if rows <= 0 || cols <= 0 || elemSize <= 0 {
		return 0, shapeErr(rows, cols)
	}
	floor, ok := ooc.MinBudget(rows, cols, elemSize)
	if !ok {
		return 0, overflowErr(rows, cols)
	}
	return floor, nil
}

// lookupOOCWisdom returns the recorded out-of-core decision for a shape
// and budget class.
func lookupOOCWisdom(rows, cols, elemSize int, budget int64) (tune.OOCDecision, bool) {
	k := tune.OOCKey{Rows: rows, Cols: cols, ElemSize: elemSize, BudgetLog2: tune.BudgetLog2(budget)}
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.LookupOOC(k)
}

func storeOOCWisdom(k tune.OOCKey, d tune.OOCDecision) {
	wisdomTab.mu.Lock()
	wisdomTab.t.StoreOOC(k, d)
	wisdomTab.mu.Unlock()
}

// OOCTuneResult reports the winning out-of-core schedule of a TuneOOC
// call.
type OOCTuneResult struct {
	Rows, Cols int
	ElemSize   int
	Budget     int64

	SegmentBytes int64
	Depth        int
	Workers      int
	GBps         float64 // effective data-backend throughput of the winner
}

// String summarizes the result.
func (r OOCTuneResult) String() string {
	return fmt.Sprintf("ooc tuned %dx%d (%dB, budget %d): seg=%d depth=%d workers=%d (%.2f GB/s)",
		r.Rows, r.Cols, r.ElemSize, r.Budget, r.SegmentBytes, r.Depth, r.Workers, r.GBps)
}

// TuneOOC measures out-of-core schedule candidates — pipeline depths,
// segment sizes and worker counts under the given budget — by
// transposing a scratch temp file of the real shape, records the winner
// in the process wisdom table under the budget's binary magnitude class,
// and returns it. Subsequent TransposeFile/NewOOCPlanner calls for the
// shape and budget class (with OOCOptions.Tuning at WisdomAuto) use the
// measured decision; SaveWisdom persists it alongside the in-memory
// decisions.
//
// The call creates (and removes) a temp file of rows*cols*elemSize
// bytes; expect it to take several full passes over that file.
func TuneOOC(rows, cols, elemSize int, budget int64, cfgs ...TuneConfig) (OOCTuneResult, error) {
	var c TuneConfig
	if len(cfgs) > 0 {
		c = cfgs[0]
	}
	size, err := checkShape(rows, cols)
	if err != nil {
		return OOCTuneResult{}, err
	}
	if elemSize <= 0 {
		return OOCTuneResult{}, shapeErr(rows, cols)
	}
	totalBytes, ok := mathutil.CheckedMul(size, elemSize)
	if !ok {
		return OOCTuneResult{}, overflowErr(rows, cols)
	}
	if budget <= 0 {
		budget = DefaultOOCBudget
	}

	f, err := os.CreateTemp("", "xposeooc-tune-*")
	if err != nil {
		return OOCTuneResult{}, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	if err := f.Truncate(int64(totalBytes)); err != nil {
		return OOCTuneResult{}, err
	}

	maxWorkers := parallel.Workers(c.Workers)
	workerCands := []int{1}
	if maxWorkers > 1 {
		workerCands = append(workerCands, maxWorkers)
	}
	if mid := maxWorkers / 2; mid > 1 && mid != maxWorkers {
		workerCands = append(workerCands, mid)
	}
	reps := 1
	if c.Reps > 0 {
		reps = c.Reps
	}

	best := OOCTuneResult{Rows: rows, Cols: cols, ElemSize: elemSize, Budget: budget}
	for _, depth := range []int{1, 2, 3} {
		for _, workers := range workerCands {
			cfg := ooc.Config{
				Rows: rows, Cols: cols, ElemSize: elemSize,
				Budget: budget, Depth: depth, Workers: workers,
			}
			var bestRun float64
			var segBytes int64
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				st, err := ooc.Run(f, cfg)
				if err != nil {
					return OOCTuneResult{}, fmt.Errorf("inplace: ooc tuning candidate depth=%d workers=%d: %w", depth, workers, err)
				}
				el := time.Since(start).Seconds()
				if el <= 0 {
					el = 1e-9
				}
				gbps := float64(st.BytesRead+st.BytesWritten) / el / 1e9
				if gbps > bestRun {
					bestRun = gbps
				}
				if st.SegmentsTransformed > 0 && st.Passes > 0 {
					segBytes = int64(st.BytesRead / (st.SegmentsTransformed))
				}
			}
			if bestRun > best.GBps {
				best.GBps = bestRun
				best.Depth = depth
				best.Workers = workers
				best.SegmentBytes = segBytes
			}
		}
	}
	if best.Depth == 0 {
		return OOCTuneResult{}, fmt.Errorf("%w for %dx%d (ooc)", ErrNoTuneResult, rows, cols)
	}
	if best.SegmentBytes <= 0 {
		best.SegmentBytes = budget / int64(2*best.Depth)
	}
	k := tune.OOCKey{Rows: rows, Cols: cols, ElemSize: elemSize, BudgetLog2: tune.BudgetLog2(budget)}
	storeOOCWisdom(k, tune.OOCDecision{
		SegmentBytes: best.SegmentBytes, Depth: best.Depth, Workers: best.Workers, GBps: best.GBps,
	})
	return best, nil
}
