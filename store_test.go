package inplace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// storeAoS builds a deterministic row-major AoS byte image.
func storeAoS(rows, fields, elem int) []byte {
	buf := make([]byte, rows*fields*elem)
	for i := range buf {
		buf[i] = byte(uint32(i)*2654435761>>7 + uint32(i))
	}
	return buf
}

// TestDatasetRoundTrip drives the public API end to end: create,
// ingest through the typed engine, reopen, scan, project, verify.
func TestDatasetRoundTrip(t *testing.T) {
	for _, elem := range []int{1, 2, 4, 8, 3} { // 3 exercises the builtin fallback
		rows, fields := 100, 6
		aos := storeAoS(rows, fields, elem)
		dir := filepath.Join(t.TempDir(), "ds")

		d, err := CreateDataset(dir, rows, fields, elem, DatasetOptions{ChunkRows: 32, Label: "pub"})
		if err != nil {
			t.Fatalf("elem %d: CreateDataset: %v", elem, err)
		}
		if err := d.Ingest(bytes.NewReader(aos)); err != nil {
			t.Fatalf("elem %d: Ingest: %v", elem, err)
		}
		d.Close()

		rd, err := OpenDataset(dir, DatasetOptions{Label: "pub"})
		if err != nil {
			t.Fatalf("elem %d: OpenDataset: %v", elem, err)
		}
		if rd.Rows() != rows || rd.Fields() != fields || rd.ElemSize() != elem || rd.ChunkRows() != 32 {
			t.Fatalf("elem %d: schema accessors wrong: %d %d %d %d",
				elem, rd.Rows(), rd.Fields(), rd.ElemSize(), rd.ChunkRows())
		}

		got := make([]byte, len(aos))
		if err := rd.Scan(got, 0, rows); err != nil {
			t.Fatalf("elem %d: Scan: %v", elem, err)
		}
		if !bytes.Equal(got, aos) {
			t.Fatalf("elem %d: scan mismatch", elem)
		}

		cols := []int{1, 4}
		proj := make([]byte, rows*len(cols)*elem)
		if err := rd.Project(proj, cols, 0, rows); err != nil {
			t.Fatalf("elem %d: Project: %v", elem, err)
		}
		for r := 0; r < rows; r++ {
			for ci, c := range cols {
				want := aos[(r*fields+c)*elem : (r*fields+c+1)*elem]
				got := proj[(r*len(cols)+ci)*elem : (r*len(cols)+ci+1)*elem]
				if !bytes.Equal(got, want) {
					t.Fatalf("elem %d: projection mismatch at row %d col %d", elem, r, c)
				}
			}
		}

		if err := rd.Verify(); err != nil {
			t.Fatalf("elem %d: Verify: %v", elem, err)
		}
		if st := rd.Stats(); st.Scans != 1 || st.Projections != 1 {
			t.Fatalf("elem %d: stats %+v, want 1 scan 1 projection", elem, st)
		}
		rd.Close()
	}
}

// TestDatasetSentinels checks the re-exported sentinels line up with
// the internal ones through the public surface.
func TestDatasetSentinels(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if _, err := CreateDataset(dir, 0, 4, 4); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("zero rows = %v, want ErrBadSchema", err)
	}
	d, err := CreateDataset(dir, 8, 2, 4, DatasetOptions{ChunkRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenDataset(dir); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("open unsealed = %v, want ErrNotSealed", err)
	}
}

// TestDatasetLengthSentinel checks that buffer-length failures from the
// dataset read paths match the package-wide ErrLength sentinel, not
// just the store's internal one.
func TestDatasetLengthSentinel(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	rows, fields, elem := 16, 4, 4
	d, err := CreateDataset(dir, rows, fields, elem, DatasetOptions{ChunkRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(bytes.NewReader(storeAoS(rows, fields, elem))); err != nil {
		t.Fatal(err)
	}
	d.Close()
	rd, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if err := rd.Scan(make([]byte, 1), 0, rows); !errors.Is(err, ErrLength) {
		t.Fatalf("short scan dst = %v, want ErrLength", err)
	}
	if err := rd.Project(make([]byte, 1), []int{0, 2}, 0, rows); !errors.Is(err, ErrLength) {
		t.Fatalf("short project dst = %v, want ErrLength", err)
	}
}

// TestTuneStoreWisdom checks TuneStore records a decision that
// CreateDataset then consumes for chunk sizing, and that the decision
// survives a wisdom save/load round trip under the "store" section.
func TestTuneStoreWisdom(t *testing.T) {
	ClearWisdom()
	t.Cleanup(ClearWisdom)

	rows, fields, elem := 2048, 8, 4
	res, err := TuneStore(rows, fields, elem, TuneConfig{Workers: 1})
	if err != nil {
		t.Fatalf("TuneStore: %v", err)
	}
	if res.ChunkRows <= 0 || res.GBps <= 0 {
		t.Fatalf("degenerate tune result %+v", res)
	}

	// A schema in the same rows-magnitude class picks up the decision.
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := CreateDataset(dir, rows, fields, elem)
	if err != nil {
		t.Fatalf("CreateDataset: %v", err)
	}
	if got := d.ChunkRows(); got != min(res.ChunkRows, rows) {
		t.Fatalf("ChunkRows = %d, want tuned %d", got, res.ChunkRows)
	}
	d.Close()

	// Round trip through the wisdom file.
	path := filepath.Join(t.TempDir(), "wisdom.json")
	if err := SaveWisdom(path); err != nil {
		t.Fatalf("SaveWisdom: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"store"`)) {
		t.Fatal("saved wisdom has no store section")
	}
	ClearWisdom()
	if _, ok := lookupStoreWisdom(rows, fields, elem); ok {
		t.Fatal("store wisdom survived ClearWisdom")
	}
	if err := LoadWisdom(path); err != nil {
		t.Fatalf("LoadWisdom: %v", err)
	}
	got, ok := lookupStoreWisdom(rows, fields, elem)
	if !ok {
		t.Fatal("store decision lost in save/load round trip")
	}
	if got.ChunkRows != res.ChunkRows {
		t.Fatalf("round-tripped ChunkRows = %d, want %d", got.ChunkRows, res.ChunkRows)
	}

	// WisdomRequired with no matching entry fails closed.
	ClearWisdom()
	if _, err := CreateDataset(filepath.Join(t.TempDir(), "x"), 64, 3, 2,
		DatasetOptions{Tuning: WisdomRequired}); !errors.Is(err, ErrNoWisdom) {
		t.Fatalf("WisdomRequired without wisdom = %v, want ErrNoWisdom", err)
	}
}
