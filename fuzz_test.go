package inplace

import (
	"testing"
)

// Fuzz targets: the in-place transposition must match the out-of-place
// reference for arbitrary shapes, methods and directions, and must be a
// perfect involution when applied forward and back. Run with
// `go test -fuzz FuzzTranspose`; the seed corpus already covers the
// degenerate and gcd-heavy corners.

func FuzzTranspose(f *testing.F) {
	f.Add(uint16(1), uint16(1), uint8(0), uint8(0))
	f.Add(uint16(3), uint16(8), uint8(0), uint8(0))
	f.Add(uint16(4), uint16(8), uint8(1), uint8(1))
	f.Add(uint16(8), uint16(4), uint8(2), uint8(2))
	f.Add(uint16(97), uint16(101), uint8(3), uint8(0))
	f.Add(uint16(64), uint16(48), uint8(4), uint8(1))
	f.Add(uint16(1), uint16(200), uint8(2), uint8(2))
	f.Add(uint16(200), uint16(1), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, mRaw, nRaw uint16, methodRaw, dirRaw uint8) {
		rows := int(mRaw%128) + 1
		cols := int(nRaw%128) + 1
		method := Method(methodRaw % 5)
		dir := Direction(dirRaw % 3)
		o := Options{Method: method, Direction: dir, Workers: 1 + int(methodRaw%3)}

		data := make([]uint32, rows*cols)
		for i := range data {
			data[i] = uint32(i) * 2654435761
		}
		want := make([]uint32, len(data))
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want[j*rows+i] = data[i*cols+j]
			}
		}
		orig := append([]uint32(nil), data...)

		if err := TransposeWith(data, rows, cols, o); err != nil {
			t.Fatalf("transpose failed: %v", err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("%dx%d method=%v dir=%v: wrong at %d", rows, cols, method, dir, i)
			}
		}
		if err := TransposeWith(data, cols, rows, o); err != nil {
			t.Fatalf("inverse transpose failed: %v", err)
		}
		for i := range data {
			if data[i] != orig[i] {
				t.Fatalf("%dx%d method=%v dir=%v: round trip wrong at %d", rows, cols, method, dir, i)
			}
		}
	})
}

func FuzzAOSRoundTrip(f *testing.F) {
	f.Add(uint16(100), uint8(3))
	f.Add(uint16(4096), uint8(8))
	f.Add(uint16(1), uint8(1))
	f.Add(uint16(333), uint8(31))
	f.Fuzz(func(t *testing.T, countRaw uint16, fieldsRaw uint8) {
		count := int(countRaw) + 1
		fields := int(fieldsRaw%32) + 1
		data := make([]uint64, count*fields)
		for i := range data {
			data[i] = uint64(i) * 0x9e3779b97f4a7c15
		}
		orig := append([]uint64(nil), data...)
		if err := AOSToSOA(data, count, fields); err != nil {
			t.Fatal(err)
		}
		// Field f of structure s must be at f*count+s.
		step := 1 + count/17
		for s := 0; s < count; s += step {
			for fi := 0; fi < fields; fi++ {
				if data[fi*count+s] != orig[s*fields+fi] {
					t.Fatalf("count=%d fields=%d: SoA wrong at s=%d f=%d", count, fields, s, fi)
				}
			}
		}
		if err := SOAToAOS(data, count, fields); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if data[i] != orig[i] {
				t.Fatalf("count=%d fields=%d: round trip wrong at %d", count, fields, i)
			}
		}
	})
}
