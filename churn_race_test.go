package inplace

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestWisdomChurnRace exercises the daemon's sharing model under the
// race detector: many goroutines Execute through one shared Planner
// and hit the global planner cache while others concurrently Tune,
// SaveWisdom and LoadWisdom. No assertions beyond correctness — the
// point is that -race stays quiet while wisdom churns.
func TestWisdomChurnRace(t *testing.T) {
	const rows, cols = 48, 64
	path := filepath.Join(t.TempDir(), "wisdom")

	pl, err := NewPlanner[uint32](rows, cols)
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	want := make([]uint32, rows*cols)
	for i := range want {
		want[i] = uint32(i)
	}
	ref := make([]uint32, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ref[c*rows+r] = want[r*cols+c]
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)

	// Executors: shared-Planner path and the global cache path.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]uint32, rows*cols)
			for iter := 0; iter < 20; iter++ {
				copy(data, want)
				if err := pl.Execute(data); err != nil {
					errc <- err
					return
				}
				for i := range data {
					if data[i] != ref[i] {
						errc <- fmt.Errorf("planner result wrong at %d", i)
						return
					}
				}
				copy(data, want)
				if err := Transpose(data, rows, cols); err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	// Churners: tuning rewrites wisdom entries while save/load cycles
	// the whole table through disk.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 4; iter++ {
			if _, err := Tune[uint32](rows, cols, TuneConfig{Fast: true, Reps: 1}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 10; iter++ {
			if err := SaveWisdom(path); err != nil {
				errc <- err
				return
			}
			if err := LoadWisdom(path); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
