// Command xposeooc transposes a raw binary matrix file in place on
// disk, out of core: the file never needs to fit in memory, only the
// -budget bytes of scratch do.
//
// Usage:
//
//	xposeooc -rows M -cols N [-elem 8] [-budget BYTES] [-journal PATH]
//	         [-resume] [-verify] [-workers N] [-stats] file
//	xposeooc -selftest [-budget BYTES]
//
// The file must hold rows*cols row-major elements of the given byte
// width; it is rewritten in place with the transposed (cols*rows)
// layout. Any positive element size works: the engine permutes opaque
// fixed-size records.
//
// With -journal, progress is crash-safe: kill the process at any point
// and re-run with -resume to converge to the identical result. -verify
// re-reads the final pass against the journal's committed checksums.
// -budget accepts plain bytes or k/m/g suffixes (powers of 1024).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"inplace"
)

func main() {
	rows := flag.Int("rows", 0, "matrix rows")
	cols := flag.Int("cols", 0, "matrix columns")
	elem := flag.Int("elem", 8, "element size in bytes (any positive width)")
	budget := flag.String("budget", "256m", "scratch memory ceiling (bytes, or k/m/g suffix)")
	journal := flag.String("journal", "", "journal file for crash-safe progress (created if absent)")
	resume := flag.Bool("resume", false, "resume an interrupted run from -journal")
	verify := flag.Bool("verify", false, "re-read the final pass against journal checksums (needs -journal)")
	workers := flag.Int("workers", 0, "transform workers per segment (0 = wisdom, then GOMAXPROCS)")
	segment := flag.String("segment", "0", "segment size override (bytes, or k/m/g suffix; 0 = derived)")
	statsOut := flag.Bool("stats", false, "print run statistics as JSON on stderr")
	wisdom := flag.String("wisdom", "", "wisdom file to load before planning (see cmd/xposetune)")
	tuneFirst := flag.Bool("tune", false, "measure-tune the schedule first (with -wisdom: save the decision back)")
	selftest := flag.Bool("selftest", false, "round-trip a scratch temp file and exit")
	flag.Parse()

	budgetBytes, err := parseSize(*budget)
	if err != nil {
		fatal(err)
	}
	segmentBytes, err := parseSize(*segment)
	if err != nil {
		fatal(err)
	}

	if *selftest {
		runSelftest(budgetBytes)
		return
	}
	if flag.NArg() != 1 || *rows <= 0 || *cols <= 0 {
		fmt.Fprintln(os.Stderr, "usage: xposeooc -rows M -cols N [-elem B] [-budget BYTES] file")
		os.Exit(2)
	}

	if *wisdom != "" {
		if err := inplace.LoadWisdom(*wisdom); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if *tuneFirst {
		res, err := inplace.TuneOOC(*rows, *cols, *elem, budgetBytes, inplace.TuneConfig{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if *wisdom != "" {
			if err := inplace.SaveWisdom(*wisdom); err != nil {
				fatal(err)
			}
		}
	}

	path := flag.Arg(0)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		fatal(err)
	} else if want := int64(*rows) * int64(*cols) * int64(*elem); fi.Size() != want {
		fatal(fmt.Errorf("%s holds %d bytes, want %d (%dx%dx%dB)", path, fi.Size(), want, *rows, *cols, *elem))
	}

	o := inplace.OOCOptions{
		Budget:       budgetBytes,
		Workers:      *workers,
		SegmentBytes: segmentBytes,
		Resume:       *resume,
		Verify:       *verify,
	}
	if *journal != "" {
		jflags := os.O_RDWR | os.O_CREATE
		jf, err := os.OpenFile(*journal, jflags, 0o644)
		if err != nil {
			fatal(err)
		}
		defer jf.Close()
		o.Journal = jf
	}

	st, err := inplace.TransposeFile(f, *rows, *cols, *elem, o)
	if *statsOut {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	}
	if err != nil {
		fatal(err)
	}
	if err := f.Sync(); err != nil {
		fatal(err)
	}
	fmt.Printf("transposed %s out of core: %dx%d -> %dx%d (%d-byte elements, budget %d bytes, %d passes)\n",
		path, *rows, *cols, *cols, *rows, *elem, budgetBytes, st.Passes)
}

// runSelftest round-trips a deterministic random matrix through a temp
// file under the given budget and checks it bit-exactly, exercising the
// full disk path on the deployment machine.
func runSelftest(budget int64) {
	const rows, cols, elem = 512, 384, 8
	f, err := os.CreateTemp("", "xposeooc-selftest-*")
	if err != nil {
		fatal(err)
	}
	defer os.Remove(f.Name())
	defer f.Close()

	rng := rand.New(rand.NewSource(1))
	in := make([]byte, rows*cols*elem)
	rng.Read(in)
	if _, err := f.WriteAt(in, 0); err != nil {
		fatal(err)
	}

	jf, err := os.CreateTemp("", "xposeooc-selftest-journal-*")
	if err != nil {
		fatal(err)
	}
	defer os.Remove(jf.Name())
	defer jf.Close()

	// Cap the budget so the run is genuinely out of core.
	if max := int64(len(in) / 4); budget > max {
		budget = max
	}
	st, err := inplace.TransposeFile(f, rows, cols, elem, inplace.OOCOptions{
		Budget: budget, Journal: jf, Verify: true,
	})
	if err != nil {
		fatal(err)
	}

	got := make([]byte, len(in))
	if _, err := f.ReadAt(got, 0); err != nil {
		fatal(err)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			src := in[(i*cols+j)*elem : (i*cols+j+1)*elem]
			dst := got[(j*rows+i)*elem : (j*rows+i+1)*elem]
			for k := range src {
				if src[k] != dst[k] {
					fatal(fmt.Errorf("selftest: mismatch at element (%d,%d)", i, j))
				}
			}
		}
	}
	fmt.Printf("selftest ok: %dx%d (%d-byte elements) under %d-byte budget, peak resident %d, %d segments, verified\n",
		rows, cols, elem, budget, st.PeakResidentBytes, st.SegmentsTransformed)
}

// parseSize parses a byte size with optional k/m/g suffix.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mul := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mul, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mul, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mul, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return n * mul, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xposeooc:", err)
	os.Exit(1)
}
