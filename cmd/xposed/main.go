// Command xposed is the transpose service daemon: it accepts matrices
// over a length-prefixed binary TCP protocol, transposes them in place
// through the process planner cache (so concurrent same-shape requests
// share one plan and small ones coalesce into batches), bounds its
// total in-flight bytes with an admission controller derived from the
// decomposition's scratch floor, and spills jobs too large for memory
// through the journaled out-of-core engine — resumable by token across
// disconnects and daemon restarts.
//
// Usage:
//
//	xposed [-addr :7077] [-http :7078] [-spill DIR] [-budget 1g]
//	       [-mem-limit 64m] [-ooc-budget 64m] [-queue-wait 2s]
//	       [-max-queue 256] [-coalesce 200us] [-coalesce-limit 32k]
//	       [-coalesce-max 64] [-wisdom FILE]
//	xposed -selftest
//
// The HTTP port serves GET /stats (every counter in the process as
// deterministic JSON) and GET /healthz. Without -spill, jobs larger
// than -mem-limit are rejected instead of spilled.
//
// -selftest runs the full service loop in-process — 64 concurrent
// clients over TCP, coalesced small jobs, a spilled job killed mid-
// upload and resumed across a daemon restart, and a /stats scrape with
// invariant checks — and exits non-zero on any failure.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"inplace"
	"inplace/client"
	"inplace/internal/mathutil"
	"inplace/internal/server"
	"inplace/internal/server/wire"
	"inplace/internal/stats"
)

func main() {
	addr := flag.String("addr", ":7077", "TCP address of the binary data port")
	httpAddr := flag.String("http", ":7078", "HTTP address for /stats and /healthz (empty disables)")
	spill := flag.String("spill", "", "spill directory for out-of-core jobs (empty disables spilling)")
	budget := flag.String("budget", "1g", "total in-flight admission budget (bytes, or k/m/g suffix)")
	memLimit := flag.String("mem-limit", "64m", "per-job in-memory payload ceiling; larger jobs spill")
	oocBudget := flag.String("ooc-budget", "64m", "resident scratch budget for spilled jobs")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "how long an unadmitted job queues before shedding")
	maxQueue := flag.Int("max-queue", 256, "admission queue depth")
	coalesce := flag.Duration("coalesce", 200*time.Microsecond, "coalescing window for small same-shape jobs (negative disables)")
	coalesceLimit := flag.String("coalesce-limit", "32k", "per-job payload ceiling for coalescing")
	coalesceMax := flag.Int("coalesce-max", 64, "max jobs per coalesced batch")
	wisdom := flag.String("wisdom", "", "wisdom file to load at startup (see cmd/xposetune)")
	selftest := flag.Bool("selftest", false, "run the in-process service selftest and exit")
	flag.Parse()

	if *selftest {
		runSelftest()
		return
	}

	budgetBytes, err := parseSize(*budget)
	if err != nil {
		fatal(err)
	}
	memBytes, err := parseSize(*memLimit)
	if err != nil {
		fatal(err)
	}
	oocBytes, err := parseSize(*oocBudget)
	if err != nil {
		fatal(err)
	}
	coalesceBytes, err := parseSize(*coalesceLimit)
	if err != nil {
		fatal(err)
	}
	if *wisdom != "" {
		if err := inplace.LoadWisdom(*wisdom); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}

	srv, err := server.New(server.Config{
		SpillDir:         *spill,
		MaxInFlightBytes: budgetBytes,
		MemJobLimit:      memBytes,
		OOCBudget:        oocBytes,
		MaxWait:          *queueWait,
		MaxQueue:         *maxQueue,
		CoalesceWindow:   *coalesce,
		CoalesceLimit:    coalesceBytes,
		CoalesceMax:      *coalesceMax,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("xposed: serving on %s", ln.Addr())
	if adopted := srv.SpilledJobs(); adopted > 0 {
		fmt.Printf(" (adopted %d resumable spilled jobs)", adopted)
	}
	fmt.Println()

	var hsrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		hsrv = &http.Server{Handler: srv.Handler()}
		go hsrv.Serve(hln)
		fmt.Printf("xposed: stats on http://%s/stats\n", hln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Printf("xposed: %v, shutting down\n", s)
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	}
	if hsrv != nil {
		hsrv.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// --- selftest ---

// The selftest is the serve-smoke gate: the entire service loop,
// in-process, with hard assertions on the /stats invariants the design
// promises — plan-cache hit rate above 90% for repeated shapes, the
// in-flight peak never beyond the budget, at least one job spilled and
// resumed across a daemon restart, and a drained ledger at shutdown.

const (
	stClients  = 64
	stMemJobs  = 8  // per-client jobs on the plan-shared mem path
	stTinyJobs = 4  // per-client jobs small enough to coalesce
	stRows     = 96 // mem-path shape
	stCols     = 128
	stTinyRows = 32 // coalesce-path shape
	stTinyCols = 16
)

func runSelftest() {
	dir, err := os.MkdirTemp("", "xposed-selftest-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	reg := stats.NewRegistry()
	cfg := server.Config{
		SpillDir:         filepath.Join(dir, "spill"),
		MaxInFlightBytes: 64 << 20,
		MemJobLimit:      1 << 20,
		OOCBudget:        256 << 10,
		CoalesceLimit:    8 << 10,
		Registry:         reg,
	}
	before := stats.Default().Snapshot()

	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Phase 1: 64 concurrent clients, each repeating the same two
	// shapes, so the planner cache and the coalescer both see heavy
	// same-shape traffic.
	var wg sync.WaitGroup
	errs := make(chan error, stClients)
	for i := 0; i < stClients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if err := selftestClient(addr, seed); err != nil {
				errs <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}

	// Phase 2: spill a 2 MiB job, kill the daemon mid-upload, restart
	// over the same spill directory and resume to completion.
	const spRows, spCols, spElem = 512, 512, 8
	payload := make([]byte, spRows*spCols*spElem)
	rand.New(rand.NewSource(42)).Read(payload)
	want := refTranspose(payload, spRows, spCols, spElem)
	token := client.NewToken()

	if err := partialSpillUpload(addr, token, payload, spRows, spCols, spElem, len(payload)/2); err != nil {
		fatal(fmt.Errorf("selftest: partial spill upload: %w", err))
	}
	if err := srv.Close(); err != nil { // forced kill: live conns die, spill files survive
		fatal(err)
	}

	srv2, err := server.New(cfg) // same spill dir, same registry: adopts the token
	if err != nil {
		fatal(err)
	}
	if got := srv2.SpilledJobs(); got != 1 {
		fatal(fmt.Errorf("selftest: restarted server adopted %d spilled jobs, want 1", got))
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go srv2.Serve(ln2)
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hsrv := &http.Server{Handler: srv2.Handler()}
	go hsrv.Serve(hln)

	got := append([]byte(nil), payload...)
	cl, err := client.Dial(ln2.Addr().String())
	if err != nil {
		fatal(err)
	}
	if err := cl.Resume(token, got, spRows, spCols, spElem); err != nil {
		fatal(fmt.Errorf("selftest: resume after restart: %w", err))
	}
	cl.Close()
	if !bytes.Equal(got, want) {
		fatal(fmt.Errorf("selftest: resumed spill result does not match reference"))
	}

	// Phase 3: scrape /stats over HTTP and check the invariants.
	snap, err := scrapeStats(hln.Addr().String())
	if err != nil {
		fatal(err)
	}
	hits := float64(snap.Counters["planner_cache_hits"] - before.Counters["planner_cache_hits"])
	misses := float64(snap.Counters["planner_cache_misses"] - before.Counters["planner_cache_misses"])
	hitRate := hits / (hits + misses)
	if hitRate <= 0.9 {
		fatal(fmt.Errorf("selftest: planner cache hit rate %.3f, want > 0.9 (hits %v misses %v)", hitRate, hits, misses))
	}
	budget := snap.Gauges["server_inflight_budget_bytes"]
	infl := snap.Levels["server_inflight_bytes"]
	if infl.Peak > budget {
		fatal(fmt.Errorf("selftest: in-flight peak %d exceeded budget %d", infl.Peak, budget))
	}
	if snap.Counters["server_jobs_spilled"] < 1 {
		fatal(fmt.Errorf("selftest: no job spilled through the out-of-core engine"))
	}
	if snap.Counters["server_resumes"] < 1 {
		fatal(fmt.Errorf("selftest: no spilled job was resumed"))
	}
	if snap.Counters["server_coalesced_batches"] < 1 {
		fatal(fmt.Errorf("selftest: no small jobs were coalesced"))
	}
	wantJobs := uint64(stClients * (stMemJobs + stTinyJobs))
	if snap.Counters["server_jobs_inmem"] != wantJobs {
		fatal(fmt.Errorf("selftest: %d in-memory jobs completed, want %d", snap.Counters["server_jobs_inmem"], wantJobs))
	}

	hsrv.Close()
	if err := srv2.Close(); err != nil { // waits for every handler: the ledger must be drained now
		fatal(err)
	}
	if v := reg.Snapshot().Levels["server_inflight_bytes"].Value; v != 0 {
		fatal(fmt.Errorf("selftest: in-flight ledger not drained after shutdown: %d", v))
	}
	fmt.Printf("selftest ok: %d clients, %d jobs (hit rate %.3f, %d coalesced into %d batches), peak in-flight %d/%d bytes, %d spilled + %d resumed across restart\n",
		stClients, snap.Counters["server_jobs"], hitRate,
		snap.Counters["server_coalesced_jobs"], snap.Counters["server_coalesced_batches"],
		infl.Peak, budget,
		snap.Counters["server_jobs_spilled"], snap.Counters["server_resumes"])
}

// selftestClient is one of the 64 concurrent clients: repeated
// same-shape jobs on the mem path plus tiny coalescable jobs, each
// verified bit-exactly against a reference transpose.
func selftestClient(addr string, seed int64) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(seed))
	run := func(rows, cols, elem int) error {
		cells, ok := mathutil.CheckedMul(rows, cols)
		if !ok {
			return fmt.Errorf("client %d: %dx%d overflows", seed, rows, cols)
		}
		size, ok := mathutil.CheckedMul(cells, elem)
		if !ok {
			return fmt.Errorf("client %d: %dx%d elem %d overflows", seed, rows, cols, elem)
		}
		data := make([]byte, size)
		rng.Read(data)
		want := refTranspose(data, rows, cols, elem)
		if err := cl.Transpose(data, rows, cols, elem); err != nil {
			return fmt.Errorf("client %d: %w", seed, err)
		}
		if !bytes.Equal(data, want) {
			return fmt.Errorf("client %d: %dx%d transpose mismatch", seed, rows, cols)
		}
		return nil
	}
	for j := 0; j < stMemJobs; j++ {
		if err := run(stRows, stCols, 4); err != nil {
			return err
		}
	}
	for j := 0; j < stTinyJobs; j++ {
		if err := run(stTinyRows, stTinyCols, 4); err != nil {
			return err
		}
	}
	return nil
}

// partialSpillUpload speaks raw wire to start a forced-spill job,
// uploads only the first partial bytes, and drops the connection — the
// client half of a mid-upload crash.
func partialSpillUpload(addr string, token uint64, payload []byte, rows, cols, elem, partial int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var hdr [wire.HeaderLen]byte

	var hello [wire.HelloLen]byte
	wire.Hello{Version: wire.Version}.Marshal(&hello)
	if err := wire.WriteFrame(bw, &hdr, wire.TypeHello, hello[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, _, err := wire.ReadHeader(br, &hdr, wire.DefaultMaxData); err != nil {
		return err
	}
	ackBuf := make([]byte, wire.HelloAckLen)
	if err := wire.ReadPayload(br, ackBuf); err != nil {
		return err
	}

	var job [wire.JobLen]byte
	wire.Job{
		Token: token,
		Rows:  uint64(rows), Cols: uint64(cols),
		Elem: uint32(elem), Flags: wire.FlagSpill,
	}.Marshal(&job)
	if err := wire.WriteFrame(bw, &hdr, wire.TypeJob, job[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	t, n, err := wire.ReadHeader(br, &hdr, wire.DefaultMaxData)
	if err != nil {
		return err
	}
	if t != wire.TypeAccept {
		return fmt.Errorf("expected Accept, got frame type %d", t)
	}
	accBuf := make([]byte, n)
	if err := wire.ReadPayload(br, accBuf); err != nil {
		return err
	}

	const chunk = 64 << 10
	for off := 0; off < partial; off += chunk {
		end := off + chunk
		if end > partial {
			end = partial
		}
		if err := wire.WriteFrame(bw, &hdr, wire.TypeData, payload[off:end]); err != nil {
			return err
		}
	}
	return bw.Flush()
	// conn closes here, mid-upload.
}

// scrapeStats fetches and decodes the /stats JSON.
func scrapeStats(addr string) (stats.Snapshot, error) {
	var snap stats.Snapshot
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("selftest: /stats returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// refTranspose computes the expected byte image of a transposed
// row-major rows×cols matrix of elem-byte records.
func refTranspose(raw []byte, rows, cols, elem int) []byte {
	out := make([]byte, len(raw))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			copy(out[(c*rows+r)*elem:(c*rows+r+1)*elem], raw[(r*cols+c)*elem:(r*cols+c+1)*elem])
		}
	}
	return out
}

// parseSize parses a byte size with optional k/m/g suffix.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mul := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mul, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mul, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mul, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return n * mul, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xposed:", err)
	os.Exit(1)
}
