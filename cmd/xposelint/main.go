// Command xposelint runs the repository's static-analysis suite (see
// internal/analyzers) over the given packages and exits non-zero when
// any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/xposelint [flags] [patterns]
//
// Patterns are directories, optionally ending in /... for a whole tree;
// the default is ./... from the module root. Flags:
//
//	-list  print the analyzers and exit
//	-why   also print every suppressed finding with its reason
//	-c n   run only the named analyzer (repeatable, comma-separated)
//	-json  emit the findings as a JSON array on stdout (machine-readable)
//
// With -json every finding — suppressed ones included — is emitted as
// {file, line, col, analyzer, message, suppressed, reason}, sorted by
// position with file paths relative to the module root, so CI can diff
// two reports textually. Exit codes are unchanged: 1 when any
// unsuppressed finding remains, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inplace/internal/analyzers"
	"inplace/internal/analyzers/lintkit"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	why := flag.Bool("why", false, "print suppressed findings with their reasons")
	only := flag.String("c", "", "comma-separated analyzer names to run (default all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All()
	if *only != "" {
		suite = suite[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "xposelint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lintkit.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, root, findings); err != nil {
			fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			if !f.Suppressed {
				os.Exit(1)
			}
		}
		return
	}

	bad := 0
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *why {
				fmt.Printf("%s\n\tallowed: %s\n", f, f.Reason)
			}
			continue
		}
		bad++
		fmt.Println(f)
	}
	if suppressed > 0 {
		fmt.Printf("xposelint: %d finding(s) suppressed by //xpose:allow (run with -why to list)\n", suppressed)
	}
	if bad > 0 {
		fmt.Printf("xposelint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		os.Exit(1)
	}
}

// jsonFinding is the stable machine-readable shape of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// writeJSON emits every finding (suppressed included) as an indented
// JSON array. lintkit.Run already sorts by position, and paths are
// relativized against the module root, so the output is deterministic
// for a given tree.
func writeJSON(w *os.File, root string, findings []lintkit.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File:       file,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the first go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
