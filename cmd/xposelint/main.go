// Command xposelint runs the repository's static-analysis suite (see
// internal/analyzers) over the given packages and exits non-zero when
// any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/xposelint [flags] [patterns]
//
// Patterns are directories, optionally ending in /... for a whole tree;
// the default is ./... from the module root. Flags:
//
//	-list  print the analyzers and exit
//	-why   also print every suppressed finding with its reason
//	-c n   run only the named analyzer (repeatable, comma-separated)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inplace/internal/analyzers"
	"inplace/internal/analyzers/lintkit"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	why := flag.Bool("why", false, "print suppressed findings with their reasons")
	only := flag.String("c", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All()
	if *only != "" {
		suite = suite[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "xposelint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lintkit.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xposelint: %v\n", err)
		os.Exit(2)
	}

	bad := 0
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *why {
				fmt.Printf("%s\n\tallowed: %s\n", f, f.Reason)
			}
			continue
		}
		bad++
		fmt.Println(f)
	}
	if suppressed > 0 {
		fmt.Printf("xposelint: %d finding(s) suppressed by //xpose:allow (run with -why to list)\n", suppressed)
	}
	if bad > 0 {
		fmt.Printf("xposelint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the first go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
