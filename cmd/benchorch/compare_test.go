package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inplace/internal/benchfmt"
	"inplace/internal/stats"
)

var update = flag.Bool("update", false, "rewrite compare fixture testdata files")

// fixtureEnv pins the environment so fixtures are host-independent and
// env-mismatch noise never leaks into the verdict assertions.
var fixtureEnv = benchfmt.Env{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 2, NumCPU: 2}

func series(name, unit string, higher bool, samples ...float64) benchfmt.Series {
	return benchfmt.Series{
		Name: name, Unit: unit, HigherIsBetter: higher,
		Samples: samples, Summary: stats.Summarize(samples),
	}
}

func micro(name string, allocs int64, gbps ...float64) benchfmt.Experiment {
	med := stats.Summarize(gbps).Median
	return benchfmt.Experiment{
		Name: name, Kind: benchfmt.KindMicro,
		NsPerOp: 1000 / med, GBps: med, AllocsPerOp: allocs, BytesPerOp: allocs * 64,
		Series: []benchfmt.Series{series("gbps", "GB/s", true, gbps...)},
	}
}

func fixture(exps ...benchfmt.Experiment) benchfmt.Report {
	r := benchfmt.Report{
		Version: benchfmt.Version, Preset: "quick", Reps: 5, Seed: 2014,
		GoVersion: fixtureEnv.GoVersion, GOMAXPROCS: fixtureEnv.GOMAXPROCS, Env: fixtureEnv,
		Experiments: exps,
	}
	return r
}

// The fixture matrix: a healthy baseline and four new runs exercising
// each gate outcome. Tight sample spreads keep the confidence intervals
// narrow so the disjoint-CI test is decisive, not flaky.
func fixtures() map[string]benchfmt.Report {
	locality := benchfmt.Experiment{
		Name: "exp:locality:locality_misses", Kind: benchfmt.KindSeries,
		Series: []benchfmt.Series{series("misses", "miss/elem", false, 0.50, 0.25, 0.125)},
	}
	base := fixture(
		micro("transpose_cold_64x48_w1", 0, 1.50, 1.52, 1.48, 1.51, 1.49),
		micro("planner_warm_cacheaware_96x64_w1", 2, 3.00, 3.02, 2.98, 3.01, 2.99),
		locality,
	)
	// Within noise: +3% on one case, -2% on the other.
	ok := fixture(
		micro("transpose_cold_64x48_w1", 0, 1.545, 1.56, 1.53, 1.55, 1.54),
		micro("planner_warm_cacheaware_96x64_w1", 2, 2.94, 2.96, 2.92, 2.95, 2.93),
		locality,
	)
	// Clear regression: -40% with a disjoint confidence interval.
	regress := fixture(
		micro("transpose_cold_64x48_w1", 0, 0.90, 0.91, 0.89, 0.90, 0.90),
		micro("planner_warm_cacheaware_96x64_w1", 2, 3.00, 3.02, 2.98, 3.01, 2.99),
		locality,
	)
	// Alloc bump: throughput unchanged, allocs/op 0 -> 3.
	allocbump := fixture(
		micro("transpose_cold_64x48_w1", 3, 1.50, 1.52, 1.48, 1.51, 1.49),
		micro("planner_warm_cacheaware_96x64_w1", 2, 3.00, 3.02, 2.98, 3.01, 2.99),
		locality,
	)
	// Missing series: the locality capture lost its "misses" series and
	// one whole micro case disappeared.
	missing := fixture(
		micro("transpose_cold_64x48_w1", 0, 1.50, 1.52, 1.48, 1.51, 1.49),
		benchfmt.Experiment{
			Name: "exp:locality:locality_misses", Kind: benchfmt.KindSeries,
			Series: []benchfmt.Series{series("other", "miss/elem", false, 1, 2, 3)},
		},
	)
	return map[string]benchfmt.Report{
		"old.json":           base,
		"new_ok.json":        ok,
		"new_regress.json":   regress,
		"new_allocbump.json": allocbump,
		"new_missing.json":   missing,
	}
}

func fixturePath(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		rep, ok := fixtures()[name]
		if !ok {
			t.Fatalf("no fixture named %s", name)
		}
		if err := benchfmt.WriteFile(path, rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("fixture missing (regenerate with -update): %v", err)
	}
	return path
}

// The gate's exit-code contract, end to end through the CLI entry point:
// 0 for within-noise runs, 1 for regressions / alloc bumps / missing
// series, and the verdict strings surface in the markdown.
func TestCompareExitCodes(t *testing.T) {
	old := fixturePath(t, "old.json")
	cases := []struct {
		name     string
		newFile  string
		args     []string
		wantExit int
		wantMD   []string
	}{
		{"within noise", "new_ok.json", nil, 0, []string{"GATE: PASS", "~noise"}},
		{"identical", "old.json", nil, 0, []string{"GATE: PASS"}},
		{"regression", "new_regress.json", nil, 1, []string{"GATE: FAIL", "REGRESSION", "beyond the noise band"}},
		{"regression warn-only", "new_regress.json", []string{"-perf", "warn"}, 0, []string{"GATE: PASS", "REGRESSION"}},
		{"alloc bump", "new_allocbump.json", nil, 1, []string{"GATE: FAIL", "ALLOC FAIL", "0 -> 3", "hard failure"}},
		{"alloc bump survives perf warn", "new_allocbump.json", []string{"-perf", "warn"}, 1, []string{"GATE: FAIL", "ALLOC FAIL"}},
		{"missing series", "new_missing.json", nil, 1, []string{"GATE: FAIL", "MISSING", "missing from the new run"}},
		{"wide threshold tolerates regression", "new_regress.json", []string{"-threshold", "0.5"}, 0, []string{"GATE: PASS"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			newPath := fixturePath(t, c.newFile)
			var stdout, stderr bytes.Buffer
			args := append(append([]string{"compare"}, c.args...), old, newPath)
			if got := run(args, &stdout, &stderr); got != c.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, c.wantExit, stdout.String(), stderr.String())
			}
			for _, want := range c.wantMD {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("markdown missing %q:\n%s", want, stdout.String())
				}
			}
		})
	}
}

// An improvement is never a failure, only a refresh-the-baseline note —
// checked in both orientations (higher-is-better throughput up, and the
// reverse comparison of the regression pair).
func TestCompareImprovementPasses(t *testing.T) {
	// regress -> base is a +66% improvement with disjoint CIs.
	old := fixturePath(t, "new_regress.json")
	newer := fixturePath(t, "old.json")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"compare", old, newer}, &stdout, &stderr); got != 0 {
		t.Fatalf("improvement failed the gate (exit %d):\n%s%s", got, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "IMPROVED") {
		t.Errorf("markdown missing IMPROVED verdict:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "refreshing the baseline") {
		t.Errorf("markdown missing baseline-refresh note:\n%s", stdout.String())
	}
}

// Usage and input errors exit 2, distinct from gate failures.
func TestCompareUsageErrors(t *testing.T) {
	old := fixturePath(t, "old.json")
	cases := [][]string{
		{"compare"},                             // missing both files
		{"compare", old},                        // missing new
		{"compare", old, "does-not-exist.json"}, /* unreadable */
		{"compare", "-perf", "maybe", old, old}, // bad policy
		{"bogus-command"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(args, &stdout, &stderr); got != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, got)
		}
	}
}

// compare -md writes the same markdown it printed.
func TestCompareWritesMarkdown(t *testing.T) {
	old := fixturePath(t, "old.json")
	regress := fixturePath(t, "new_regress.json")
	mdPath := filepath.Join(t.TempDir(), "diff.md")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"compare", "-md", mdPath, old, regress}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	disk, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != stdout.String() {
		t.Error("-md file differs from printed markdown")
	}
}

// Direct unit coverage of the verdict engine for cases the fixtures
// don't isolate: legacy scalar-only entries flag but never fail, and a
// brand-new experiment is a note, not a failure.
func TestCompareLegacyAndNewEntries(t *testing.T) {
	oldR := fixture(benchfmt.Experiment{Name: "legacy_case", NsPerOp: 100, GBps: 2.0})
	newR := fixture(
		benchfmt.Experiment{Name: "legacy_case", NsPerOp: 250, GBps: 0.8},
		micro("brand_new_case", 0, 1, 1, 1),
	)
	c := compareReports(oldR, newR, compareOpts{})
	if c.failed() {
		t.Fatalf("legacy scalar regression must not hard-fail: %v", c.failures)
	}
	if len(c.flags) == 0 || !strings.Contains(c.flags[0], "legacy") {
		t.Errorf("legacy regression not flagged: %v", c.flags)
	}
	found := false
	for _, n := range c.notes {
		if strings.Contains(n, "brand_new_case") && strings.Contains(n, "new in this run") {
			found = true
		}
	}
	if !found {
		t.Errorf("new experiment not noted: %v", c.notes)
	}
}

// Environment and preset mismatches annotate but never fail on their own.
func TestCompareEnvMismatchIsNote(t *testing.T) {
	oldR := fixture(micro("c", 0, 1, 1, 1))
	newR := fixture(micro("c", 0, 1, 1, 1))
	newR.Preset = "small"
	newR.Env.GoVersion = "go1.23.0"
	c := compareReports(oldR, newR, compareOpts{})
	if c.failed() {
		t.Fatalf("mismatched env/preset must not fail: %v", c.failures)
	}
	joined := strings.Join(c.notes, "\n")
	if !strings.Contains(joined, "preset mismatch") || !strings.Contains(joined, "environment differs") {
		t.Errorf("mismatch notes missing: %v", c.notes)
	}
}
