// Command benchorch is the benchmark orchestrator and perf-regression
// gate: it enumerates named presets of the internal/bench micro matrix
// (scale × shape family × workers × scratch budget), measures every case
// with the autotuner's robust timing loop, and emits the versioned BENCH
// JSON envelope (internal/benchfmt) plus a markdown report. Its compare
// mode diffs two envelopes with noise-aware thresholds: alloc-count
// regressions and missing series hard-fail, throughput deltas beyond the
// outlier-trimmed confidence bands fail or flag depending on -perf.
//
// Usage:
//
//	benchorch run [-preset quick|small|medium|large] [-seed S]
//	              [-run REGEXP] [-json FILE] [-md FILE] [-q]
//	benchorch compare [-threshold 0.10] [-perf fail|warn] [-md FILE]
//	                  old.json new.json
//	benchorch list
//
// The repo's `make bench-gate` target runs the quick preset and compares
// it against the committed results/bench-baseline.json in -perf warn
// mode (the baseline may come from another host, where only alloc counts
// transfer). Refresh the baseline with:
//
//	go run ./cmd/benchorch run -preset quick -seed 2014 -json results/bench-baseline.json
//
// Exit codes: 0 gate passed, 1 gate failed (regression, alloc bump or
// missing series), 2 usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"inplace/internal/bench"
	"inplace/internal/benchfmt"
	"inplace/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; it is the testable entry point and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runRun(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "list":
		return runList(stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "benchorch: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  benchorch run [-preset NAME] [-seed S] [-run REGEXP] [-json FILE] [-md FILE] [-q]
  benchorch compare [-threshold F] [-perf fail|warn] [-md FILE] old.json new.json
  benchorch list
`)
}

func runRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchorch run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("preset", "quick", "named preset (see `benchorch list`)")
	seed := fs.Int64("seed", 2014, "workload RNG seed")
	pattern := fs.String("run", "", "regexp selecting case/series names ('' = all); anchor with ^...$ for exact sets")
	jsonOut := fs.String("json", "", "write the BENCH JSON envelope to this file")
	mdOut := fs.String("md", "", "write the markdown report to this file")
	quiet := fs.Bool("q", false, "suppress per-case progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, ok := bench.LookupPreset(*preset)
	if !ok {
		fmt.Fprintf(stderr, "benchorch: unknown preset %q\n", *preset)
		return 2
	}
	var match func(string) bool
	if *pattern != "" {
		re, err := regexp.Compile(*pattern)
		if err != nil {
			fmt.Fprintf(stderr, "benchorch: bad -run pattern: %v\n", err)
			return 2
		}
		match = re.MatchString
	}
	progress := func(name string) {
		if !*quiet {
			fmt.Fprintf(stderr, "benchorch: measuring %s\n", name)
		}
	}
	rep := bench.RunPreset(p, *seed, match, progress)
	if len(rep.Experiments) == 0 {
		fmt.Fprintf(stderr, "benchorch: -run %q matched no cases\n", *pattern)
		return 2
	}
	md := runMarkdown(rep)
	fmt.Fprint(stdout, md)
	if *jsonOut != "" {
		if err := benchfmt.WriteFile(*jsonOut, rep); err != nil {
			fmt.Fprintf(stderr, "benchorch: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "benchorch: wrote %s\n", *jsonOut)
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchorch: %v\n", err)
			return 2
		}
	}
	return 0
}

// runMarkdown renders a run report: one row per case with the robust
// digest of its primary series.
func runMarkdown(rep benchfmt.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Bench run: preset %s (reps %d, seed %d, %s %s/%s, %d cpus)\n\n",
		rep.Preset, rep.Reps, rep.Seed, rep.Env.GoVersion, rep.Env.GOOS, rep.Env.GOARCH, rep.Env.NumCPU)
	b.WriteString("| case | ns/op (median) | GB/s (trimmed) | ±MAD | allocs/op |\n")
	b.WriteString("|------|---------------:|---------------:|-----:|----------:|\n")
	for _, e := range rep.Experiments {
		if e.Kind == benchfmt.KindSeries {
			continue
		}
		var g stats.Summary
		if s, ok := e.FindSeries("gbps"); ok {
			g = s.Summary
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.3f | %.3f | %d |\n",
			e.Name, e.NsPerOp, g.TrimmedMean, g.MAD, e.AllocsPerOp)
	}
	series := false
	for _, e := range rep.Experiments {
		if e.Kind != benchfmt.KindSeries {
			continue
		}
		if !series {
			b.WriteString("\n## Captured experiment series\n\n")
			b.WriteString("| series | metric | n | trimmed mean | [ci] |\n")
			b.WriteString("|--------|--------|--:|-------------:|------|\n")
			series = true
		}
		for _, s := range e.Series {
			fmt.Fprintf(&b, "| %s | %s | %d | %.4g | [%.4g, %.4g] |\n",
				e.Name, s.Name, s.Summary.N, s.Summary.TrimmedMean, s.Summary.CILo, s.Summary.CIHi)
		}
	}
	return b.String()
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchorch compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "relative noise floor for throughput deltas")
	perf := fs.String("perf", "fail", "beyond-noise throughput regressions: 'fail' the gate or only 'warn'")
	mdOut := fs.String("md", "", "write the markdown diff to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "benchorch compare: want exactly two envelope files (old new)")
		return 2
	}
	var perfFail bool
	switch *perf {
	case "fail":
		perfFail = true
	case "warn":
		perfFail = false
	default:
		fmt.Fprintf(stderr, "benchorch compare: -perf must be 'fail' or 'warn', got %q\n", *perf)
		return 2
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldR, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchorch: %s: %v\n", oldPath, err)
		return 2
	}
	newR, err := benchfmt.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchorch: %s: %v\n", newPath, err)
		return 2
	}
	c := compareReports(oldR, newR, compareOpts{Threshold: *threshold, PerfFail: perfFail})
	md := c.Markdown(oldPath, newPath)
	fmt.Fprint(stdout, md)
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchorch: %v\n", err)
			return 2
		}
	}
	if c.failed() {
		return 1
	}
	return 0
}

func runList(stdout io.Writer) int {
	fmt.Fprintln(stdout, "presets:")
	for _, p := range bench.Presets() {
		exps := "-"
		if len(p.Experiments) > 0 {
			exps = strings.Join(p.Experiments, ",")
		}
		fmt.Fprintf(stdout, "  %-8s scale=%-6s workers=%v budgets=%v reps=%d experiments=%s\n",
			p.Name, p.Scale, p.Workers, p.BudgetDivs, p.Reps, exps)
	}
	fmt.Fprintln(stdout, "\nexperiments:")
	for _, e := range bench.All() {
		det := ""
		if e.Deterministic {
			det = " [deterministic]"
		}
		fmt.Fprintf(stdout, "  %-10s %s%s\n", e.ID, e.Title, det)
	}
	return 0
}
