package main

import (
	"fmt"
	"math"
	"strings"

	"inplace/internal/benchfmt"
)

// The noise-aware diff between two BENCH envelopes. Allocation counts
// are deterministic per code path, so any alloc-count increase is a hard
// failure regardless of host. Wall-clock throughput is noisy, so a
// throughput verdict needs both disjoint confidence intervals and a
// relative delta beyond the noise floor before it counts as a
// regression; whether that fails the gate or only flags it is the
// caller's policy (the CI gate compares against a baseline possibly
// measured on another host, where only allocs transfer).

type compareOpts struct {
	// Threshold is the relative noise floor: deltas within it are never
	// regressions even with disjoint CIs (MAD-zero series collapse their
	// interval to a point). Default 0.10.
	Threshold float64
	// PerfFail makes beyond-noise throughput regressions fail the gate;
	// false demotes them to flags. Alloc regressions and missing series
	// always fail.
	PerfFail bool
}

func (o compareOpts) withDefaults() compareOpts {
	if o.Threshold <= 0 {
		o.Threshold = 0.10
	}
	return o
}

// Verdicts, one per compared metric.
const (
	vOK        = "ok"
	vNoise     = "~noise"
	vImproved  = "IMPROVED"
	vRegressed = "REGRESSION"
	vAllocFail = "ALLOC FAIL"
	vMissing   = "MISSING"
	vNew       = "new"
)

type compareRow struct {
	Name    string
	Metric  string
	Unit    string
	Old     float64
	New     float64
	Delta   float64 // relative, NaN when undefined
	Verdict string
}

type comparison struct {
	rows     []compareRow
	failures []string // hard gate failures
	flags    []string // beyond-noise findings demoted to warnings
	notes    []string // context (env mismatch, new series, ...)
}

func (c *comparison) failed() bool { return len(c.failures) > 0 }

func compareReports(oldR, newR benchfmt.Report, o compareOpts) *comparison {
	o = o.withDefaults()
	c := &comparison{}
	if oldR.Preset != newR.Preset {
		c.notes = append(c.notes, fmt.Sprintf(
			"preset mismatch: old %q vs new %q — series align by name only within one preset", oldR.Preset, newR.Preset))
	}
	if !oldR.Env.Equal(newR.Env) {
		c.notes = append(c.notes, fmt.Sprintf(
			"environment differs (old %s/%s %s, new %s/%s %s): wall-clock deltas are cross-host, alloc counts still bind",
			oldR.Env.GOOS, oldR.Env.GOARCH, oldR.Env.GoVersion,
			newR.Env.GOOS, newR.Env.GOARCH, newR.Env.GoVersion))
	}

	for _, oe := range oldR.Experiments {
		ne, ok := newR.Find(oe.Name)
		if !ok {
			c.rows = append(c.rows, compareRow{Name: oe.Name, Metric: "-", Delta: math.NaN(), Verdict: vMissing})
			c.failures = append(c.failures, fmt.Sprintf("%s: present in baseline but missing from the new run", oe.Name))
			continue
		}
		micro := oe.Kind == "" || oe.Kind == benchfmt.KindMicro
		if micro {
			c.compareAllocs(oe, ne)
		}
		if len(oe.Series) == 0 && micro {
			// Legacy micro entry (BENCH_PR2-era): scalar medians only, no
			// noise estimate — informational.
			c.compareLegacyScalar(oe, ne, o)
			continue
		}
		for _, os := range oe.Series {
			if micro && os.Name == "ns_per_op" {
				continue // the inverse of gbps; one verdict per case
			}
			ns, ok := ne.FindSeries(os.Name)
			if !ok {
				name := oe.Name + "/" + os.Name
				c.rows = append(c.rows, compareRow{Name: oe.Name, Metric: os.Name, Delta: math.NaN(), Verdict: vMissing})
				c.failures = append(c.failures, fmt.Sprintf("%s: series present in baseline but missing from the new run", name))
				continue
			}
			c.compareSeries(oe.Name, os, ns, o)
		}
	}
	for _, ne := range newR.Experiments {
		if _, ok := oldR.Find(ne.Name); !ok {
			c.rows = append(c.rows, compareRow{Name: ne.Name, Metric: "-", Delta: math.NaN(), Verdict: vNew})
			c.notes = append(c.notes, fmt.Sprintf("%s: new in this run (no baseline)", ne.Name))
		}
	}
	return c
}

func (c *comparison) compareAllocs(oe, ne benchfmt.Experiment) {
	row := compareRow{
		Name: oe.Name, Metric: "allocs/op", Unit: "allocs",
		Old: float64(oe.AllocsPerOp), New: float64(ne.AllocsPerOp), Delta: math.NaN(),
	}
	switch {
	case ne.AllocsPerOp > oe.AllocsPerOp:
		row.Verdict = vAllocFail
		c.failures = append(c.failures, fmt.Sprintf(
			"%s: allocs/op regressed %d -> %d (alloc counts are deterministic; this is a hard failure)",
			oe.Name, oe.AllocsPerOp, ne.AllocsPerOp))
	case ne.AllocsPerOp < oe.AllocsPerOp:
		row.Verdict = vImproved
		c.notes = append(c.notes, fmt.Sprintf("%s: allocs/op improved %d -> %d — refresh the baseline to lock it in",
			oe.Name, oe.AllocsPerOp, ne.AllocsPerOp))
	default:
		row.Verdict = vOK
	}
	c.rows = append(c.rows, row)
}

// compareSeries issues the noise-aware verdict for one matched series.
func (c *comparison) compareSeries(expName string, os, ns benchfmt.Series, o compareOpts) {
	name := expName + "/" + os.Name
	oldV, newV := os.Summary.TrimmedMean, ns.Summary.TrimmedMean
	row := compareRow{Name: expName, Metric: os.Name, Unit: os.Unit, Old: oldV, New: newV, Delta: math.NaN()}
	if os.Summary.N == 0 || ns.Summary.N == 0 || oldV == 0 {
		row.Verdict = vOK
		c.rows = append(c.rows, row)
		return
	}
	delta := (newV - oldV) / math.Abs(oldV)
	row.Delta = delta

	// Disjoint-CI test oriented by the metric's direction.
	var worseBeyondCI, betterBeyondCI bool
	if os.HigherIsBetter {
		worseBeyondCI = ns.Summary.CIHi < os.Summary.CILo
		betterBeyondCI = ns.Summary.CILo > os.Summary.CIHi
	} else {
		worseBeyondCI = ns.Summary.CILo > os.Summary.CIHi
		betterBeyondCI = ns.Summary.CIHi < os.Summary.CILo
	}
	worse := (delta < 0) == os.HigherIsBetter && delta != 0

	switch {
	case math.Abs(delta) <= o.Threshold || (!worseBeyondCI && !betterBeyondCI):
		if delta == 0 {
			row.Verdict = vOK
		} else {
			row.Verdict = vNoise
		}
	case worse && worseBeyondCI:
		row.Verdict = vRegressed
		msg := fmt.Sprintf("%s: %+.1f%% beyond the noise band (old %.4g, new %.4g %s, CIs disjoint)",
			name, delta*100, oldV, newV, os.Unit)
		if o.PerfFail {
			c.failures = append(c.failures, msg)
		} else {
			c.flags = append(c.flags, msg)
		}
	case !worse && betterBeyondCI:
		row.Verdict = vImproved
		c.notes = append(c.notes, fmt.Sprintf("%s: %+.1f%% beyond the noise band — consider refreshing the baseline",
			name, delta*100))
	default:
		// Beyond the relative floor but the CIs still overlap in the
		// direction that matters: noise.
		row.Verdict = vNoise
	}
	c.rows = append(c.rows, row)
}

// compareLegacyScalar handles BENCH_PR2-era entries that carry only the
// median scalars: with no spread estimate the verdict can only be
// informational, so beyond-floor deltas flag but never fail.
func (c *comparison) compareLegacyScalar(oe, ne benchfmt.Experiment, o compareOpts) {
	row := compareRow{Name: oe.Name, Metric: "gbps", Unit: "GB/s", Old: oe.GBps, New: ne.GBps, Delta: math.NaN()}
	if oe.GBps > 0 && ne.GBps > 0 {
		delta := (ne.GBps - oe.GBps) / oe.GBps
		row.Delta = delta
		legacyFloor := math.Max(2.5*o.Threshold, 0.25)
		switch {
		case delta < -legacyFloor:
			row.Verdict = vRegressed
			c.flags = append(c.flags, fmt.Sprintf(
				"%s: %+.1f%% on legacy scalar medians (no sample series in baseline; informational)", oe.Name, delta*100))
		case delta > legacyFloor:
			row.Verdict = vImproved
		default:
			row.Verdict = vNoise
		}
	} else {
		row.Verdict = vOK
	}
	c.rows = append(c.rows, row)
}

// Markdown renders the diff as the gate's report.
func (c *comparison) Markdown(oldName, newName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Bench compare: %s vs %s\n\n", oldName, newName)
	if c.failed() {
		b.WriteString("**GATE: FAIL**\n\n")
	} else {
		b.WriteString("**GATE: PASS**\n\n")
	}
	b.WriteString("| case | metric | old | new | delta | verdict |\n")
	b.WriteString("|------|--------|----:|----:|------:|---------|\n")
	for _, r := range c.rows {
		delta := "-"
		if !math.IsNaN(r.Delta) {
			delta = fmt.Sprintf("%+.1f%%", r.Delta*100)
		}
		fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %s | %s |\n",
			r.Name, r.Metric, r.Old, r.New, delta, r.Verdict)
	}
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		b.WriteString("\n## " + title + "\n\n")
		for _, it := range items {
			b.WriteString("- " + it + "\n")
		}
	}
	section("Failures", c.failures)
	section("Flags", c.flags)
	section("Notes", c.notes)
	return b.String()
}
