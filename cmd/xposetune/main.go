// Command xposetune batch-tunes a list of matrix shapes and writes the
// measured-optimal decisions to a wisdom file that library users load
// with inplace.LoadWisdom (or the -wisdom flags of cmd/xpose and
// cmd/benchsuite). It is the offline half of the FFTW-wisdom pattern:
// spend measurement time once per machine, then every process planning
// those shapes gets the measured plan instead of the static heuristic.
//
// Usage:
//
//	xposetune -shapes 1024x1024,100000x8 [-elem 8] [-workers 0]
//	          [-o wisdom.json] [-merge] [-fast]
//	xposetune -list wisdom.json
//
// -merge folds the new measurements over an existing wisdom file
// instead of replacing it; unknown-version files merge as empty. -fast
// caps measurement for smoke runs (noisy decisions, full code path).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"inplace"
	"inplace/internal/tune"
)

func main() {
	shapes := flag.String("shapes", "", "comma-separated RxC shape list to tune (e.g. 1024x1024,100000x8)")
	elem := flag.Int("elem", 8, "element size in bytes (1, 2, 4 or 8)")
	workers := flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS); part of the wisdom key")
	out := flag.String("o", "wisdom.json", "output wisdom file")
	merge := flag.Bool("merge", false, "merge into an existing output file instead of replacing it")
	fast := flag.Bool("fast", false, "capped smoke measurement (fast, noisy)")
	list := flag.String("list", "", "print the entries of a wisdom file and exit")
	flag.Parse()

	if *list != "" {
		listWisdom(*list)
		return
	}
	if *shapes == "" {
		fmt.Fprintln(os.Stderr, "usage: xposetune -shapes RxC[,RxC...] [-elem B] [-o wisdom.json]")
		os.Exit(2)
	}

	if *merge {
		if err := inplace.LoadWisdom(*out); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}

	cfg := inplace.TuneConfig{Workers: *workers, Fast: *fast}
	for _, spec := range strings.Split(*shapes, ",") {
		rows, cols, err := parseShape(spec)
		if err != nil {
			fatal(err)
		}
		res, err := inplace.TuneElem(rows, cols, *elem, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
	}

	if err := inplace.SaveWisdom(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d decisions to %s\n", inplace.WisdomLen(), *out)
}

func parseShape(spec string) (rows, cols int, err error) {
	spec = strings.TrimSpace(spec)
	a, b, ok := strings.Cut(spec, "x")
	if !ok {
		return 0, 0, fmt.Errorf("shape %q is not RxC", spec)
	}
	rows, err = strconv.Atoi(a)
	if err != nil {
		return 0, 0, fmt.Errorf("shape %q: %v", spec, err)
	}
	cols, err = strconv.Atoi(b)
	if err != nil {
		return 0, 0, fmt.Errorf("shape %q: %v", spec, err)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("shape %q must be positive", spec)
	}
	return rows, cols, nil
}

func listWisdom(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := tune.Load(f)
	if err != nil {
		fatal(err)
	}
	if t.Len() == 0 {
		fmt.Printf("%s: no usable entries (empty or unknown version)\n", path)
		return
	}
	for _, k := range t.Keys() {
		d, _ := t.Lookup(k)
		dir := "R2C"
		if d.C2R {
			dir = "C2R"
		}
		fmt.Printf("%-24s %s %s workers=%d blockw=%d %.2f GB/s\n",
			k, d.Variant, dir, d.Workers, d.BlockW, d.GBps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xposetune:", err)
	os.Exit(1)
}
