// Command xposetune batch-tunes a list of matrix shapes and writes the
// measured-optimal decisions to a wisdom file that library users load
// with inplace.LoadWisdom (or the -wisdom flags of cmd/xpose and
// cmd/benchsuite). It is the offline half of the FFTW-wisdom pattern:
// spend measurement time once per machine, then every process planning
// those shapes gets the measured plan instead of the static heuristic.
//
// Usage:
//
//	xposetune -shapes 1024x1024,100000x8 [-elem 8] [-workers 0]
//	          [-o wisdom.json] [-merge] [-fast]
//	xposetune -perms "2x8x8x4:0,3,1,2;2x4x8x8:0,2,3,1" [-elem 8] [-o wisdom.json]
//	xposetune -list wisdom.json
//
// -perms tunes axis permutations for the PermuteAxes planner: each
// semicolon-separated entry is dims:perm, and the decision is recorded
// under the permutation's canonical form (see the perm section of the
// wisdom file). -shapes and -perms may be combined in one run.
//
// -merge folds the new measurements over an existing wisdom file
// instead of replacing it; unknown-version files merge as empty. -fast
// caps measurement for smoke runs (noisy decisions, full code path).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"inplace"
	"inplace/internal/tensor"
	"inplace/internal/tune"
)

func main() {
	shapes := flag.String("shapes", "", "comma-separated RxC shape list to tune (e.g. 1024x1024,100000x8)")
	perms := flag.String("perms", "", `semicolon-separated dims:perm list to tune (e.g. "2x8x8x4:0,3,1,2;2x4x8x8:0,2,3,1")`)
	elem := flag.Int("elem", 8, "element size in bytes (1, 2, 4 or 8)")
	workers := flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS); part of the wisdom key")
	out := flag.String("o", "wisdom.json", "output wisdom file")
	merge := flag.Bool("merge", false, "merge into an existing output file instead of replacing it")
	fast := flag.Bool("fast", false, "capped smoke measurement (fast, noisy)")
	list := flag.String("list", "", "print the entries of a wisdom file and exit")
	flag.Parse()

	if *list != "" {
		listWisdom(*list)
		return
	}
	if *shapes == "" && *perms == "" {
		fmt.Fprintln(os.Stderr, "usage: xposetune -shapes RxC[,RxC...] [-perms dims:perm[;...]] [-elem B] [-o wisdom.json]")
		os.Exit(2)
	}

	if *merge {
		if err := inplace.LoadWisdom(*out); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}

	cfg := inplace.TuneConfig{Workers: *workers, Fast: *fast}
	if *shapes != "" {
		for _, spec := range strings.Split(*shapes, ",") {
			rows, cols, err := parseShape(spec)
			if err != nil {
				fatal(err)
			}
			res, err := inplace.TuneElem(rows, cols, *elem, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res)
		}
	}
	if *perms != "" {
		for _, spec := range strings.Split(*perms, ";") {
			dims, perm, err := parsePermSpec(spec)
			if err != nil {
				fatal(err)
			}
			res, err := inplace.TunePermuteElem(dims, perm, *elem, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res)
		}
	}

	if err := inplace.SaveWisdom(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d decisions to %s\n", inplace.WisdomLen()+inplace.PermWisdomLen(), *out)
}

// parsePermSpec parses one "dims:perm" entry, e.g. "2x8x8x4:0,3,1,2".
func parsePermSpec(spec string) (dims, perm []int, err error) {
	spec = strings.TrimSpace(spec)
	d, p, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, nil, fmt.Errorf("perm spec %q is not dims:perm", spec)
	}
	s, err := tensor.ParseShape(d)
	if err != nil {
		return nil, nil, fmt.Errorf("perm spec %q: %v", spec, err)
	}
	pp, err := tensor.ParsePerm(p, len(s))
	if err != nil {
		return nil, nil, fmt.Errorf("perm spec %q: %v", spec, err)
	}
	return s, pp, nil
}

func parseShape(spec string) (rows, cols int, err error) {
	spec = strings.TrimSpace(spec)
	a, b, ok := strings.Cut(spec, "x")
	if !ok {
		return 0, 0, fmt.Errorf("shape %q is not RxC", spec)
	}
	rows, err = strconv.Atoi(a)
	if err != nil {
		return 0, 0, fmt.Errorf("shape %q: %v", spec, err)
	}
	cols, err = strconv.Atoi(b)
	if err != nil {
		return 0, 0, fmt.Errorf("shape %q: %v", spec, err)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("shape %q must be positive", spec)
	}
	return rows, cols, nil
}

func listWisdom(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := tune.Load(f)
	if err != nil {
		fatal(err)
	}
	if t.Len() == 0 && t.PermLen() == 0 {
		fmt.Printf("%s: no usable entries (empty or unknown version)\n", path)
		return
	}
	for _, k := range t.Keys() {
		d, _ := t.Lookup(k)
		dir := "R2C"
		if d.C2R {
			dir = "C2R"
		}
		fmt.Printf("%-24s %s %s workers=%d blockw=%d %.2f GB/s\n",
			k, d.Variant, dir, d.Workers, d.BlockW, d.GBps)
	}
	for _, k := range t.PermKeys() {
		d, _ := t.LookupPerm(k)
		fmt.Printf("%-24s %s workers=%d %.2f GB/s\n", k, d.Strategy, d.Workers, d.GBps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xposetune:", err)
	os.Exit(1)
}
