// Command xpose transposes a raw binary matrix file in place — or, with
// -dims/-perm, permutes the axes of a raw rank-k tensor file — and hosts
// the walkthrough demos of the paper's Figures 1 and 2.
//
// Usage:
//
//	xpose -rows M -cols N [-elem 8] [-order row|col] [-method auto|...]
//	      [-workers N] file
//	xpose -dims NxHxWxC -perm 0,3,1,2 [-elem 8] [-workers N] file
//	xpose -demo fig1|fig2
//
// The file must hold the tensor's elements of the given byte width; it
// is rewritten in place with the transposed (or axis-permuted) layout.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"inplace"
	"inplace/internal/bench"
	"inplace/internal/mathutil"
	"inplace/internal/tensor"
)

func main() {
	rows := flag.Int("rows", 0, "matrix rows")
	cols := flag.Int("cols", 0, "matrix columns")
	dims := flag.String("dims", "", `tensor dimensions for -perm, outermost first (e.g. "2x8x8x4")`)
	perm := flag.String("perm", "", `axis permutation over -dims, numpy convention (e.g. "0,3,1,2")`)
	elem := flag.Int("elem", 8, "element size in bytes (1, 2, 4 or 8)")
	order := flag.String("order", "row", "storage order: row or col (2D only)")
	method := flag.String("method", "auto", "engine: auto, algorithm1, gather, cache-aware or skinny")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	demo := flag.String("demo", "", "print a figure walkthrough (fig1 or fig2) and exit")
	wisdom := flag.String("wisdom", "", "wisdom file to load before planning (see cmd/xposetune)")
	tuneFirst := flag.Bool("tune", false, "measure-tune the shape before transposing (with -wisdom: save the decision back)")
	flag.Parse()

	if *demo != "" {
		runDemo(*demo)
		return
	}
	permMode := *dims != "" || *perm != ""
	if permMode && (*dims == "" || *perm == "" || *rows != 0 || *cols != 0) {
		fmt.Fprintln(os.Stderr, "usage: xpose -dims NxHxWxC -perm 0,3,1,2 [-elem B] file (-dims and -perm go together, without -rows/-cols)")
		os.Exit(2)
	}
	if flag.NArg() != 1 || (!permMode && (*rows <= 0 || *cols <= 0)) {
		fmt.Fprintln(os.Stderr, "usage: xpose -rows M -cols N [-elem B] [-order row|col] file\n       xpose -dims NxHxWxC -perm 0,3,1,2 [-elem B] file")
		os.Exit(2)
	}
	if permMode && *order != "row" {
		fatal(fmt.Errorf("-order %s does not apply to -perm (a column-major tensor is described by reversing dims and perm)", *order))
	}

	o := inplace.Options{Workers: *workers}
	switch *order {
	case "row":
		o.Order = inplace.RowMajor
	case "col":
		o.Order = inplace.ColMajor
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	switch *method {
	case "auto":
		o.Method = inplace.Auto
	case "algorithm1":
		o.Method = inplace.Algorithm1
	case "gather":
		o.Method = inplace.GatherOnly
	case "cache-aware":
		o.Method = inplace.CacheAware
	case "skinny":
		o.Method = inplace.SkinnyMethod
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	// Wisdom flow: load recorded decisions first, optionally refresh the
	// one for this shape by measurement, and let the planner consult the
	// result (Options.Tuning defaults to WisdomAuto).
	if *wisdom != "" {
		if err := inplace.LoadWisdom(*wisdom); err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if permMode {
		runPermute(*dims, *perm, *elem, o, *tuneFirst, *wisdom, flag.Arg(0))
		return
	}
	if *tuneFirst {
		// Order normalization happens inside the planner; tune the shape
		// as the planner will see it.
		tr, tc := *rows, *cols
		if o.Order == inplace.ColMajor {
			tr, tc = tc, tr
		}
		res, err := inplace.TuneElem(tr, tc, *elem, inplace.TuneConfig{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if *wisdom != "" {
			if err := inplace.SaveWisdom(*wisdom); err != nil {
				fatal(err)
			}
		}
	}

	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	want := *rows * *cols * *elem
	if len(raw) != want {
		fatal(fmt.Errorf("%s holds %d bytes, want %d (%dx%dx%dB)", path, len(raw), want, *rows, *cols, *elem))
	}

	if err := transposeBytes(raw, *rows, *cols, *elem, o); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("transposed %s: %dx%d -> %dx%d (%d-byte elements)\n", path, *rows, *cols, *cols, *rows, *elem)
}

// runPermute is the -dims/-perm mode: permute the axes of a raw rank-k
// tensor file in place.
func runPermute(dimsSpec, permSpec string, elem int, o inplace.Options, tuneFirst bool, wisdom, path string) {
	s, err := tensor.ParseShape(dimsSpec)
	if err != nil {
		fatal(err)
	}
	p, err := tensor.ParsePerm(permSpec, len(s))
	if err != nil {
		fatal(err)
	}
	if tuneFirst {
		res, err := inplace.TunePermuteElem(s, p, elem, inplace.TuneConfig{Workers: o.Workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		if wisdom != "" {
			if err := inplace.SaveWisdom(wisdom); err != nil {
				fatal(err)
			}
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	want, ok := mathutil.CheckedMul(s.Size(), elem)
	if !ok {
		fatal(fmt.Errorf("tensor %s with %d-byte elements overflows int", s, elem))
	}
	if len(raw) != want {
		fatal(fmt.Errorf("%s holds %d bytes, want %d (%sx%dB)", path, len(raw), want, s, elem))
	}
	if err := permuteBytes(raw, s, p, elem, o); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("permuted %s: %s perm %s -> %s (%d-byte elements)\n",
		path, s, p, tensor.Permuted(s, p), elem)
}

// permuteBytes views the raw buffer as typed elements and permutes.
func permuteBytes(raw []byte, s tensor.Shape, p tensor.Perm, elem int, o inplace.Options) error {
	n := s.Size()
	switch elem {
	case 1:
		return inplace.PermuteAxes(raw, s, p, o)
	case 2:
		v := make([]uint16, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint16(raw[2*i:])
		}
		if err := inplace.PermuteAxes(v, s, p, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint16(raw[2*i:], x)
		}
	case 4:
		v := make([]uint32, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		if err := inplace.PermuteAxes(v, s, p, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], x)
		}
	case 8:
		v := make([]uint64, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		if err := inplace.PermuteAxes(v, s, p, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint64(raw[8*i:], x)
		}
	default:
		return fmt.Errorf("unsupported element size %d", elem)
	}
	return nil
}

// transposeBytes views the raw buffer as typed elements and transposes.
func transposeBytes(raw []byte, rows, cols, elem int, o inplace.Options) error {
	n := rows * cols
	switch elem {
	case 1:
		return inplace.TransposeWith(raw, rows, cols, o)
	case 2:
		v := make([]uint16, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint16(raw[2*i:])
		}
		if err := inplace.TransposeWith(v, rows, cols, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint16(raw[2*i:], x)
		}
	case 4:
		v := make([]uint32, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		if err := inplace.TransposeWith(v, rows, cols, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], x)
		}
	case 8:
		v := make([]uint64, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		if err := inplace.TransposeWith(v, rows, cols, o); err != nil {
			return err
		}
		for i, x := range v {
			binary.LittleEndian.PutUint64(raw[8*i:], x)
		}
	default:
		return fmt.Errorf("unsupported element size %d", elem)
	}
	return nil
}

func runDemo(name string) {
	exp, ok := bench.Get(name)
	if !ok || (name != "fig1" && name != "fig2") {
		fmt.Fprintf(os.Stderr, "xpose: unknown demo %q (want fig1 or fig2)\n", name)
		os.Exit(2)
	}
	for _, r := range exp.Run(bench.Config{}) {
		fmt.Println(r.Text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpose:", err)
	os.Exit(1)
}
