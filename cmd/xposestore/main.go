// Command xposestore manages columnar tile-store datasets: fixed-width
// records ingested row-major (AoS), stored column-major on disk via the
// per-chunk skinny transpose, and read back as full scans or
// column projections.
//
// Usage:
//
//	xposestore create -rows N -fields F -elem B [-chunk R] [-input FILE]
//	           [-budget BYTES] [-wisdom FILE] [-tune] DIR
//	xposestore scan [-lo N] [-hi N] [-out FILE] [-stats] DIR
//	xposestore project -cols 1,7,14 [-lo N] [-hi N] [-out FILE] [-stats] DIR
//	xposestore verify DIR
//	xposestore stats [-scans N] DIR
//	xposestore selftest
//
// create reads rows*fields*elem bytes of row-major records from -input
// (stdin by default) and seals the dataset; a kill at any point leaves
// the dataset absent, never torn. scan and project write raw bytes to
// -out (stdout by default). verify re-reads every column segment
// against its CRC64 frame. stats exercises repeated scans and prints
// the handle's cache and I/O counters as JSON. selftest builds a
// scratch dataset and asserts the store's three load-bearing
// properties: projections touch fewer backend bytes than scans, warm
// scans hit the block cache, and an interrupted ingest is invisible.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"inplace"
	"inplace/internal/mathutil"
)

// recordBuf allocates rows×fields×elem bytes, refusing shapes whose
// byte size overflows int.
func recordBuf(rows, fields, elem int) ([]byte, error) {
	rf, ok := mathutil.CheckedMul(rows, fields)
	if !ok {
		return nil, fmt.Errorf("xposestore: %dx%d rows overflows int", rows, fields)
	}
	n, ok := mathutil.CheckedMul(rf, elem)
	if !ok {
		return nil, fmt.Errorf("xposestore: %dx%dx%d bytes overflows int", rows, fields, elem)
	}
	return make([]byte, n), nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = runCreate(args)
	case "scan":
		err = runRead(args, false)
	case "project":
		err = runRead(args, true)
	case "verify":
		err = runVerify(args)
	case "stats":
		err = runStats(args)
	case "selftest":
		err = runSelftest()
	case "-selftest", "--selftest": // flag spelling, same entry point
		err = runSelftest()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xposestore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xposestore create -rows N -fields F -elem B [-chunk R] [-input FILE] DIR
  xposestore scan [-lo N] [-hi N] [-out FILE] [-stats] DIR
  xposestore project -cols 1,7,14 [-lo N] [-hi N] [-out FILE] [-stats] DIR
  xposestore verify DIR
  xposestore stats [-scans N] DIR
  xposestore selftest`)
	os.Exit(2)
}

// dirArg returns the single positional DIR argument of a parsed FlagSet.
func dirArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", errors.New("expected exactly one dataset directory argument")
	}
	return fs.Arg(0), nil
}

func runCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	rows := fs.Int("rows", 0, "record count")
	fields := fs.Int("fields", 0, "fields per record")
	elem := fs.Int("elem", 4, "field element size in bytes")
	chunk := fs.Int("chunk", 0, "chunk height in records (0 = wisdom, then heuristic)")
	input := fs.String("input", "", "row-major AoS input file (default stdin)")
	budget := fs.String("budget", "0", "ingest scratch ceiling (bytes, or k/m/g; 0 = default)")
	wisdom := fs.String("wisdom", "", "wisdom file to load before sizing (see cmd/xposetune)")
	tuneFirst := fs.Bool("tune", false, "measure-tune chunk sizing first (with -wisdom: save the decision back)")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	budgetBytes, err := parseSize(*budget)
	if err != nil {
		return err
	}

	if *wisdom != "" {
		if err := inplace.LoadWisdom(*wisdom); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if *tuneFirst {
		res, err := inplace.TuneStore(*rows, *fields, *elem)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if *wisdom != "" {
			if err := inplace.SaveWisdom(*wisdom); err != nil {
				return err
			}
		}
	}

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	d, err := inplace.CreateDataset(dir, *rows, *fields, *elem, inplace.DatasetOptions{
		ChunkRows: *chunk,
		MemBudget: budgetBytes,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Ingest(in); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("created %s: %d rows × %d fields (%d-byte elements), chunk height %d, %d segments (%d spilled chunks)\n",
		dir, *rows, *fields, *elem, d.ChunkRows(), st.SegmentsWritten, st.Spills)
	return nil
}

func runRead(args []string, project bool) error {
	name := "scan"
	if project {
		name = "project"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	colsArg := fs.String("cols", "", "comma-separated column indices (project only)")
	lo := fs.Int("lo", 0, "first row (inclusive)")
	hi := fs.Int("hi", 0, "last row (exclusive; 0 = all rows)")
	out := fs.String("out", "", "output file for raw bytes (default stdout)")
	statsOut := fs.Bool("stats", false, "print handle counters as JSON on stderr")
	cache := fs.String("cache", "0", "block cache capacity (bytes, or k/m/g; 0 = default)")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	cacheBytes, err := parseSize(*cache)
	if err != nil {
		return err
	}

	d, err := inplace.OpenDataset(dir, inplace.DatasetOptions{CacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	defer d.Close()
	if *hi == 0 {
		*hi = d.Rows()
	}

	var buf []byte
	if project {
		cols, err := parseCols(*colsArg)
		if err != nil {
			return err
		}
		buf, err = recordBuf(*hi-*lo, len(cols), d.ElemSize())
		if err != nil {
			return err
		}
		if err := d.Project(buf, cols, *lo, *hi); err != nil {
			return err
		}
	} else {
		buf, err = recordBuf(*hi-*lo, d.Fields(), d.ElemSize())
		if err != nil {
			return err
		}
		if err := d.Scan(buf, *lo, *hi); err != nil {
			return err
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if *statsOut {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d.Stats()); err != nil {
			return err
		}
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	d, err := inplace.OpenDataset(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Verify(); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("verified %s: %d rows × %d fields, %d bytes checked, all frames and checksums valid\n",
		dir, d.Rows(), d.Fields(), st.BytesRead)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	scans := fs.Int("scans", 2, "full scans to drive through the cache before reporting")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	d, err := inplace.OpenDataset(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	buf, err := recordBuf(d.Rows(), d.Fields(), d.ElemSize())
	if err != nil {
		return err
	}
	for i := 0; i < *scans; i++ {
		if err := d.Scan(buf, 0, d.Rows()); err != nil {
			return err
		}
	}
	report := struct {
		Rows      int `json:"rows"`
		Fields    int `json:"fields"`
		ElemSize  int `json:"elem_size"`
		ChunkRows int `json:"chunk_rows"`
		inplace.DatasetStats
	}{d.Rows(), d.Fields(), d.ElemSize(), d.ChunkRows(), d.Stats()}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// runSelftest asserts the store's load-bearing properties end to end on
// the deployment machine:
//
//  1. a 3-of-16-column projection reads strictly fewer backend bytes
//     than a full scan of the same rows (counted at the read syscalls);
//  2. repeated scans hit the block cache at a rate above 0.9;
//  3. an ingest abandoned midway leaves the dataset invisible to open
//     — absent or fully valid, never torn — and a subsequent complete
//     ingest passes the full checksum scan.
func runSelftest() error {
	const rows, fields, elem, chunk = 512, 16, 4, 64
	scratch, err := os.MkdirTemp("", "xposestore-selftest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	aos := make([]byte, rows*fields*elem)
	for i := range aos {
		aos[i] = byte(uint32(i)*2654435761>>9 + uint32(i)*13)
	}
	build := func(dir string) (*inplace.Dataset, error) {
		d, err := inplace.CreateDataset(dir, rows, fields, elem, inplace.DatasetOptions{ChunkRows: chunk})
		if err != nil {
			return nil, err
		}
		if err := d.Ingest(bytes.NewReader(aos)); err != nil {
			d.Close()
			return nil, err
		}
		return d, nil
	}

	// Property 1: projection reads fewer backend bytes than a scan.
	// Fresh handle per measurement so cold counters compare cleanly.
	ds, err := build(filepath.Join(scratch, "proj"))
	if err != nil {
		return err
	}
	ds.Close()
	scanHandle, err := inplace.OpenDataset(filepath.Join(scratch, "proj"))
	if err != nil {
		return err
	}
	full := make([]byte, rows*fields*elem)
	if err := scanHandle.Scan(full, 0, rows); err != nil {
		return err
	}
	scanBytes := scanHandle.Stats().BytesRead
	scanHandle.Close()
	if !bytes.Equal(full, aos) {
		return errors.New("selftest: full scan mismatch")
	}

	projHandle, err := inplace.OpenDataset(filepath.Join(scratch, "proj"))
	if err != nil {
		return err
	}
	cols := []int{1, 7, 14}
	proj, err := recordBuf(rows, len(cols), elem)
	if err != nil {
		return err
	}
	if err := projHandle.Project(proj, cols, 0, rows); err != nil {
		return err
	}
	projBytes := projHandle.Stats().BytesRead
	projHandle.Close()
	for r := 0; r < rows; r++ {
		for ci, c := range cols {
			want := aos[(r*fields+c)*elem : (r*fields+c+1)*elem]
			if !bytes.Equal(proj[(r*len(cols)+ci)*elem:(r*len(cols)+ci+1)*elem], want) {
				return fmt.Errorf("selftest: projection mismatch at row %d column %d", r, c)
			}
		}
	}
	if projBytes >= scanBytes {
		return fmt.Errorf("selftest: projection of %d/%d columns read %d bytes, full scan %d — columnar layout is not paying off",
			len(cols), fields, projBytes, scanBytes)
	}

	// Property 2: warm scans hit the cache above 0.9.
	warm, err := inplace.OpenDataset(filepath.Join(scratch, "proj"))
	if err != nil {
		return err
	}
	const passes = 16
	for i := 0; i < passes; i++ {
		if err := warm.Scan(full, 0, rows); err != nil {
			return err
		}
	}
	st := warm.Stats()
	warm.Close()
	hitRate := float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	if hitRate <= 0.9 {
		return fmt.Errorf("selftest: cache hit rate %.3f over %d scans, want > 0.9", hitRate, passes)
	}

	// Property 3: an ingest killed midway leaves the dataset absent.
	// A reader that stops short models the kill: segments are partially
	// written but the meta state machine never reaches sealed.
	tornDir := filepath.Join(scratch, "torn")
	torn, err := inplace.CreateDataset(tornDir, rows, fields, elem, inplace.DatasetOptions{ChunkRows: chunk})
	if err != nil {
		return err
	}
	if err := torn.Ingest(bytes.NewReader(aos[:len(aos)/2])); err == nil {
		torn.Close()
		return errors.New("selftest: truncated ingest unexpectedly succeeded")
	}
	torn.Close()
	if _, err := inplace.OpenDataset(tornDir); !errors.Is(err, inplace.ErrNotSealed) {
		return fmt.Errorf("selftest: open of killed ingest = %v, want ErrNotSealed", err)
	}
	// Completing the dataset from scratch makes it fully valid — the
	// checksum scan proves every byte, not just the metadata.
	if err := os.RemoveAll(tornDir); err != nil {
		return err
	}
	redo, err := build(tornDir)
	if err != nil {
		return err
	}
	defer redo.Close()
	if err := redo.Verify(); err != nil {
		return fmt.Errorf("selftest: checksum scan after re-ingest: %w", err)
	}

	fmt.Printf("selftest ok: %d rows × %d fields; projection %d/%d bytes vs scan, hit rate %.3f over %d scans, killed ingest invisible and re-ingest checksum-clean\n",
		rows, fields, projBytes, scanBytes, hitRate, passes)
	return nil
}

// parseCols parses a comma-separated column list.
func parseCols(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("project requires -cols (comma-separated column indices)")
	}
	parts := strings.Split(s, ",")
	cols := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad column %q: %v", p, err)
		}
		cols = append(cols, n)
	}
	return cols, nil
}

// parseSize parses a byte size with optional k/m/g suffix.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mul := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mul, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mul, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mul, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return n * mul, nil
}
