// Command soaconv converts a raw binary Array-of-Structures file to a
// Structure-of-Arrays layout (or back) in place, using the skinny-matrix
// specialization of the decomposition (paper §6.1).
//
// Usage:
//
//	soaconv -count N -fields K [-elem 8] [-to soa|aos] [-workers W] file
//
// The file must hold count structures of fields elements each (AoS, when
// -to soa) or fields arrays of count elements (SoA, when -to aos).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"inplace"
)

func main() {
	count := flag.Int("count", 0, "number of structures")
	fields := flag.Int("fields", 0, "elements per structure")
	elem := flag.Int("elem", 8, "element size in bytes (4 or 8)")
	to := flag.String("to", "soa", "conversion direction: soa (AoS->SoA) or aos (SoA->AoS)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	if flag.NArg() != 1 || *count <= 0 || *fields <= 0 {
		fmt.Fprintln(os.Stderr, "usage: soaconv -count N -fields K [-elem B] [-to soa|aos] file")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if *count > math.MaxInt / *fields || *count**fields > math.MaxInt / *elem {
		fatal(fmt.Errorf("count*fields*elem overflows (count=%d fields=%d elem=%d)", *count, *fields, *elem))
	}
	n := *count * *fields
	if len(raw) != n**elem {
		fatal(fmt.Errorf("%s holds %d bytes, want %d", path, len(raw), n**elem))
	}

	o := inplace.Options{Workers: *workers}
	convert := func(data any) error {
		switch *to {
		case "soa":
			switch d := data.(type) {
			case []uint32:
				return inplace.AOSToSOA(d, *count, *fields, o)
			case []uint64:
				return inplace.AOSToSOA(d, *count, *fields, o)
			}
		case "aos":
			switch d := data.(type) {
			case []uint32:
				return inplace.SOAToAOS(d, *count, *fields, o)
			case []uint64:
				return inplace.SOAToAOS(d, *count, *fields, o)
			}
		}
		return fmt.Errorf("unknown direction %q", *to)
	}

	switch *elem {
	case 4:
		v := make([]uint32, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		if err := convert(v); err != nil {
			fatal(err)
		}
		for i, x := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], x)
		}
	case 8:
		v := make([]uint64, n)
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		if err := convert(v); err != nil {
			fatal(err)
		}
		for i, x := range v {
			binary.LittleEndian.PutUint64(raw[8*i:], x)
		}
	default:
		fatal(fmt.Errorf("unsupported element size %d", *elem))
	}

	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %s to %s (count=%d fields=%d elem=%dB)\n", path, *to, *count, *fields, *elem)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soaconv:", err)
	os.Exit(1)
}
