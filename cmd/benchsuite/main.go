// Command benchsuite regenerates the paper's evaluation: every table and
// figure of "A Decomposition for In-place Matrix Transposition"
// (PPoPP 2014) has a corresponding experiment that prints the paper's
// rows/series and writes a CSV for plotting. Beyond the paper's
// artifacts, the planreuse experiment measures this implementation's
// Planner API: the warm/cold speedup distribution of reusing a
// precomputed plan (schedule, scratch arena, row-permutation cycles)
// across the randomized AoS workload.
//
// Usage:
//
//	benchsuite [-run fig3,table1|all] [-scale tiny|small|paper]
//	           [-workers N] [-seed S] [-out results/]
//	           [-wisdom wisdom.json] [-tune] [-bench-json BENCH_PR2.json]
//
// -wisdom loads an autotuner wisdom file (cmd/xposetune) so experiments
// that plan with default options use measured decisions; -tune makes
// the "tuned" experiment calibrate in-process (and saves back to the
// -wisdom file, if given). -bench-json writes the fixed micro suite —
// per-experiment ns/op, GB/s and allocs/op — as machine-readable JSON;
// the repo root's BENCH_PR2.json is generated this way.
//
// The default small scale shrinks the paper's matrix sizes to
// laptop-class footprints while preserving every comparison; -scale
// paper uses the published ranges (hundreds of MB per sample).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"inplace"
	"inplace/internal/bench"
	"inplace/internal/benchfmt"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids ("+strings.Join(bench.IDs(), ",")+") or 'all'")
	scale := flag.String("scale", "small", "workload scale: tiny, small or paper")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 2014, "workload RNG seed")
	out := flag.String("out", "results", "directory for CSV output ('' = none)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	wisdom := flag.String("wisdom", "", "wisdom file to load before measuring (with -tune: save new decisions back)")
	tune := flag.Bool("tune", false, "autotune the 'tuned' experiment's shapes in-process")
	benchJSON := flag.String("bench-json", "", "write the machine-readable micro suite (ns/op, GB/s, allocs) to this file ('' = skip)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, ok := bench.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: sc, Workers: *workers, Seed: *seed, Tune: *tune}

	if *wisdom != "" {
		if err := inplace.LoadWisdom(*wisdom); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded wisdom: %d decisions from %s\n\n", inplace.WisdomLen(), *wisdom)
	}

	var ids []string
	if *run == "all" {
		ids = bench.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if _, ok := bench.Get(id); !ok {
				fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		start := time.Now()
		results := bench.MustGet(id).Run(cfg)
		for _, r := range results {
			fmt.Println(r.Text)
			if r.CSV != "" && *out != "" {
				path := filepath.Join(*out, r.Name+".csv")
				if err := os.WriteFile(path, []byte(r.CSV), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("[wrote %s]\n\n", path)
			}
		}
		fmt.Printf("== %s done in %v (scale=%s) ==\n\n", id, time.Since(start).Round(time.Millisecond), sc)
	}

	if *tune && *wisdom != "" {
		if err := inplace.SaveWisdom(*wisdom); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved wisdom: %d decisions to %s\n", inplace.WisdomLen(), *wisdom)
	}

	if *benchJSON != "" {
		start := time.Now()
		// The micro suite serializes through the shared BENCH envelope
		// (internal/benchfmt) — the same format cmd/benchorch produces and
		// `benchorch compare` diffs.
		if err := benchfmt.WriteFile(*benchJSON, bench.Micro(cfg)); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s in %v]\n", *benchJSON, time.Since(start).Round(time.Millisecond))
	}
}
