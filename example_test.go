package inplace_test

import (
	"fmt"

	"inplace"
)

func ExampleTranspose() {
	// A 2×3 row-major matrix.
	data := []int{
		1, 2, 3,
		4, 5, 6,
	}
	if err := inplace.Transpose(data, 2, 3); err != nil {
		panic(err)
	}
	// The same buffer now holds the 3×2 transpose.
	fmt.Println(data)
	// Output: [1 4 2 5 3 6]
}

func ExampleNewPlan() {
	p, err := inplace.NewPlan(4, 8, inplace.Options{})
	if err != nil {
		panic(err)
	}
	data := make([]int, 4*8)
	for i := range data {
		data[i] = i
	}
	if err := inplace.Do(p, data); err != nil {
		panic(err)
	}
	// Element (i, j) of the original is element (j, i) of the result:
	// original (1, 5) = 13 is now at row 5, column 1 of the 8×4 result.
	fmt.Println(data[5*4+1])
	// Output: 13
}

func ExampleAOSToSOA() {
	// Three "structures" of two fields each: (x0,y0), (x1,y1), (x2,y2).
	aos := []float64{
		10, 1,
		20, 2,
		30, 3,
	}
	if err := inplace.AOSToSOA(aos, 3, 2); err != nil {
		panic(err)
	}
	// All x values are now contiguous, then all y values.
	fmt.Println(aos)
	// Output: [10 20 30 1 2 3]
}

func ExampleC2R() {
	// The paper's Figure 1 shape: C2R applied to a row-major 3×8 array
	// produces the row-major 8×3 transpose in the same buffer.
	data := make([]int, 3*8)
	for i := range data {
		data[i] = i
	}
	if err := inplace.C2R(data, 3, 8, inplace.Options{}); err != nil {
		panic(err)
	}
	fmt.Println(data[:6]) // first two rows of the 8×3 transpose
	// Output: [0 8 16 1 9 17]
}
