package inplace

import (
	"testing"
)

// Differential fuzzing for the rank-generic permutation: for arbitrary
// rank ≤ 5 shapes and arbitrary permutations, PermuteAxes must match a
// naive strided copy into a fresh buffer, and composing with the
// inverse permutation must restore the original. Run with
// `go test -fuzz FuzzPermuteAxes`.

func FuzzPermuteAxes(f *testing.F) {
	f.Add(uint8(2), uint32(0x3737), uint32(1), uint8(1), uint8(0))
	f.Add(uint8(3), uint32(0xbeef), uint32(5), uint8(2), uint8(1))
	f.Add(uint8(4), uint32(0x1234), uint32(11), uint8(3), uint8(4))
	f.Add(uint8(5), uint32(0xffff), uint32(119), uint8(0), uint8(8))
	f.Add(uint8(4), uint32(0x0101), uint32(23), uint8(1), uint8(16))
	f.Fuzz(func(t *testing.T, rankRaw uint8, dimsRaw, permSel uint32, workersRaw, budgetRaw uint8) {
		k := int(rankRaw%4) + 2 // rank 2..5
		dims := make([]int, k)
		rem := dimsRaw
		for i := range dims {
			dims[i] = int(rem%6) + 1 // dims 1..6
			rem /= 6
		}
		// Decode permSel as a factoradic selector so every permutation of
		// 0..k-1 is reachable.
		avail := make([]int, k)
		for i := range avail {
			avail[i] = i
		}
		perm := make([]int, 0, k)
		sel := permSel
		for len(avail) > 0 {
			i := int(sel) % len(avail)
			sel /= uint32(len(avail))
			perm = append(perm, avail[i])
			avail = append(avail[:i], avail[i+1:]...)
		}
		o := Options{Workers: 1 + int(workersRaw%3)}
		if budgetRaw%4 == 0 && budgetRaw > 0 {
			// Exercise the cycle fallback under a tiny scratch budget.
			o.MaxScratchBytes = int(budgetRaw)
		}

		size := 1
		for _, d := range dims {
			size *= d
		}
		data := make([]uint32, size)
		for i := range data {
			data[i] = uint32(i) * 2654435761
		}
		orig := append([]uint32(nil), data...)
		want := naivePermute(orig, dims, perm)

		if err := PermuteAxes(data, dims, perm, o); err != nil {
			t.Fatalf("PermuteAxes(%v, %v, %+v): %v", dims, perm, o, err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("dims=%v perm=%v opts=%+v: wrong at %d", dims, perm, o, i)
			}
		}

		inv := make([]int, k)
		for j, a := range perm {
			inv[a] = j
		}
		if err := PermuteAxes(data, permutedDims(dims, perm), inv, o); err != nil {
			t.Fatalf("inverse PermuteAxes: %v", err)
		}
		for i := range data {
			if data[i] != orig[i] {
				t.Fatalf("dims=%v perm=%v: inverse round trip wrong at %d", dims, perm, i)
			}
		}
	})
}
