// Race-detector instrumentation inserts its own allocations, so the
// exact-zero assertions only hold in uninstrumented builds.
//go:build !race

package inplace_test

import (
	"testing"

	"inplace"
)

// These tests pin down the tentpole guarantee of the Planner API: once
// the scratch arena is warm, Execute performs no heap allocation at all.
// testing.AllocsPerRun runs the body once before measuring, which warms
// the arena and the lazily-built cycle decomposition exactly like a
// caller's first Execute would.

func requireZeroAllocs(t *testing.T, rows, cols int, o inplace.Options) {
	t.Helper()
	pl, err := inplace.NewPlanner[int64](rows, cols, o)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, rows*cols)
	for i := range data {
		data[i] = int64(i)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := pl.Execute(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Planner.Execute(%dx%d, %+v) allocates %.1f times per run, want 0", rows, cols, o, allocs)
	}
}

func TestExecuteZeroAllocCacheAware(t *testing.T) {
	requireZeroAllocs(t, 512, 384, inplace.Options{Workers: 1, Method: inplace.CacheAware})
}

func TestExecuteZeroAllocCacheAwareR2C(t *testing.T) {
	// rows > cols drives the heuristic to the R2C pipeline.
	requireZeroAllocs(t, 384, 512, inplace.Options{Workers: 1, Method: inplace.CacheAware})
}

func TestExecuteZeroAllocSkinny(t *testing.T) {
	// ForceC2R keeps the cr plan at (100000, 8): band 7, well within the
	// banded sweeps' viability bound, so this exercises the real skinny
	// path rather than the cache-aware fallback.
	requireZeroAllocs(t, 100000, 8, inplace.Options{Workers: 1, Method: inplace.SkinnyMethod, Direction: inplace.ForceC2R})
}

func TestExecuteZeroAllocSkinnyR2C(t *testing.T) {
	requireZeroAllocs(t, 8, 100000, inplace.Options{Workers: 1, Method: inplace.SkinnyMethod, Direction: inplace.ForceR2C})
}

func TestExecuteZeroAllocScatterGather(t *testing.T) {
	requireZeroAllocs(t, 96, 56, inplace.Options{Workers: 1, Method: inplace.Algorithm1})
	requireZeroAllocs(t, 96, 56, inplace.Options{Workers: 1, Method: inplace.GatherOnly})
}

func TestExecuteZeroAllocGcdShapes(t *testing.T) {
	// gcd > 1 enables the pre-rotation pass and its rotation closures.
	requireZeroAllocs(t, 120, 96, inplace.Options{Workers: 1, Method: inplace.CacheAware})
}

func TestPermuteExecuteZeroAllocRank2(t *testing.T) {
	// The rank-2 [1,0] permutation routes through the same planning path
	// as Transpose: one single-slab pass on the warm 2D engine, so the
	// warm Execute must not allocate either.
	pl, err := inplace.NewPermutePlanner[int64]([]int{512, 384}, []int{1, 0}, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 512*384)
	for i := range data {
		data[i] = int64(i)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := pl.Execute(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PermutePlanner.Execute(512x384, [1,0]) allocates %.1f times per run, want 0", allocs)
	}
}

func TestExecuteZeroAllocTuned(t *testing.T) {
	// A planner resolved through the wisdom table must keep the
	// zero-alloc steady state: wisdom only changes which plan is built,
	// never the Execute path. Tune under a 1-worker budget so the
	// recorded decision matches the Workers:1 lookups below, whatever
	// variant the measurement picks.
	defer inplace.ClearWisdom()
	for _, sh := range []struct{ rows, cols int }{{256, 192}, {20000, 6}} {
		if _, err := inplace.Tune[int64](sh.rows, sh.cols, inplace.TuneConfig{Workers: 1, Fast: true}); err != nil {
			t.Fatal(err)
		}
		requireZeroAllocs(t, sh.rows, sh.cols, inplace.Options{Workers: 1})
		requireZeroAllocs(t, sh.rows, sh.cols, inplace.Options{Workers: 1, Tuning: inplace.WisdomRequired})
	}
}
