package inplace

// Array-of-Structures ↔ Structure-of-Arrays conversion (paper §6.1).
//
// An Array of Structures holding count structures of fields words each is
// bit-identical to a row-major count×fields matrix; its transpose — the
// fields×count matrix — is the Structure-of-Arrays layout. The direction
// heuristic picks the pipeline whose internal columns are `fields` long,
// which is the paper's specialization: with the structure size tiny,
// every column operation runs in cache ("in on-chip memory"), the row
// passes stream, and conversion proceeds at transpose speed. The paper
// measured this at a median 34.3 GB/s on the K20c (Figure 7).

// aosArgs validates the shared AOSToSOA/SOAToAOS contract — positive
// shape, overflow-free product, matching buffer length — and resolves
// the variadic options.
//
//xpose:hotpath
func aosArgs[T any](data []T, count, fields int, opts []Options) (Options, error) {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	size, err := checkShape(count, fields)
	if err != nil {
		return o, err
	}
	if len(data) != size {
		return o, lengthErr(len(data), size)
	}
	return o, nil
}

// AOSToSOA converts an Array of Structures to a Structure of Arrays in
// place: data holds count structures of fields elements each; afterwards
// it holds fields arrays of count elements each.
//
//xpose:hotpath
func AOSToSOA[T any](data []T, count, fields int, opts ...Options) error {
	o, err := aosArgs(data, count, fields, opts)
	if err != nil {
		return err
	}
	return TransposeWith(data, count, fields, o)
}

// SOAToAOS converts a Structure of Arrays back to an Array of
// Structures in place: data holds fields arrays of count elements each;
// afterwards it holds count structures of fields elements each.
//
//xpose:hotpath
func SOAToAOS[T any](data []T, count, fields int, opts ...Options) error {
	o, err := aosArgs(data, count, fields, opts)
	if err != nil {
		return err
	}
	return TransposeWith(data, fields, count, o)
}
