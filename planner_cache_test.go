package inplace

import "testing"

// refTranspose is a minimal reference for the cache tests (the external
// test package has its own; this one avoids an import cycle).
func refTranspose(data []uint64, rows, cols int) []uint64 {
	out := make([]uint64, len(data))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = data[i*cols+j]
		}
	}
	return out
}

func fillRandomish(data []uint64) {
	for i := range data {
		data[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
}

// TestPlannerCacheEvictionAndStats fills the bounded planner cache past
// capacity and checks that (a) the FIFO eviction drops the oldest
// entry, (b) an evicted entry is transparently rebuilt and still
// transposes correctly, and (c) the read-only hit/miss/eviction
// counters account for every step exactly.
func TestPlannerCacheEvictionAndStats(t *testing.T) {
	flushPlannerCache() // deterministic starting point
	s0 := PlannerCacheStats()
	o := Options{Workers: 1}

	const aRows, aCols = 37, 29
	a := make([]uint64, aRows*aCols)
	fillRandomish(a)
	want := refTranspose(a, aRows, aCols)

	// First use: a miss that builds and caches the planner.
	if err := TransposeWith(a, aRows, aCols, o); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("first transpose incorrect at %d", i)
		}
	}
	if s := PlannerCacheStats(); s.Misses-s0.Misses != 1 || s.Hits != s0.Hits {
		t.Fatalf("after first use: %+v (baseline %+v), want exactly one miss", s, s0)
	}

	// Transpose back with the swapped shape — a distinct cache key, so a
	// second miss — then repeat the original shape for a pure hit.
	if err := TransposeWith(a, aCols, aRows, o); err != nil {
		t.Fatal(err)
	}
	if err := TransposeWith(a, aRows, aCols, o); err != nil {
		t.Fatal(err)
	}
	if s := PlannerCacheStats(); s.Hits-s0.Hits != 1 || s.Misses-s0.Misses != 2 {
		t.Fatalf("after hit: %+v (baseline %+v), want hits+1 misses+2", s, s0)
	}

	// Flood the cache with plannerCacheCap distinct shapes: the two
	// entries above are the oldest and must both be evicted, with the
	// eviction counter advancing once per drop beyond capacity.
	for i := 0; i < plannerCacheCap; i++ {
		buf := make([]uint64, (i+3)*2)
		if err := TransposeWith(buf, i+3, 2, o); err != nil {
			t.Fatal(err)
		}
	}
	s := PlannerCacheStats()
	if got := s.Misses - s0.Misses; got != 2+plannerCacheCap {
		t.Fatalf("flood misses = %d, want %d", got, 2+plannerCacheCap)
	}
	// 2 + cap insertions into a cap-bounded FIFO ⇒ exactly 2 evictions.
	if got := s.Evictions - s0.Evictions; got != 2 {
		t.Fatalf("flood evictions = %d, want 2", got)
	}

	// The evicted entry rebuilds transparently and still transposes
	// correctly (the data buffer currently holds the transposed array, so
	// transpose back and compare with the original).
	fillRandomish(a)
	want = refTranspose(a, aRows, aCols)
	if err := TransposeWith(a, aRows, aCols, o); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("rebuilt-after-eviction transpose incorrect at %d", i)
		}
	}
	s = PlannerCacheStats()
	if got := s.Misses - s0.Misses; got != 3+plannerCacheCap {
		t.Fatalf("post-eviction rebuild misses = %d, want %d (a rebuild, not a hit)", got, 3+plannerCacheCap)
	}
	if got := s.Evictions - s0.Evictions; got != 3 {
		t.Fatalf("post-eviction rebuild evictions = %d, want 3", got)
	}

	// A freshly inserted shape still hits.
	if err := TransposeWith(a, aRows, aCols, o); err != nil {
		t.Fatal(err)
	}
	if got := PlannerCacheStats().Hits - s0.Hits; got != 2 {
		t.Fatalf("final hits = %d, want 2", got)
	}
}

// TestPlannerCacheFlushOnWisdomChange pins the invariant that makes
// wisdom safe: mutating the wisdom table drops cached planners, so a
// stale pre-wisdom plan can never serve a post-wisdom call.
func TestPlannerCacheFlushOnWisdomChange(t *testing.T) {
	flushPlannerCache()
	defer ClearWisdom()
	ClearWisdom()
	o := Options{Workers: 1}

	data := make([]uint64, 48*64)
	if err := TransposeWith(data, 48, 64, o); err != nil {
		t.Fatal(err)
	}
	s0 := PlannerCacheStats()
	if _, err := Tune[uint64](48, 64, TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	// The same call misses again: the cache was flushed by the wisdom
	// update and the rebuilt planner reflects the tuned decision.
	if err := TransposeWith(data, 64, 48, o); err != nil {
		t.Fatal(err)
	}
	if s := PlannerCacheStats(); s.Misses == s0.Misses {
		t.Error("wisdom mutation did not flush the planner cache")
	}
}
