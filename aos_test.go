package inplace

import "testing"

// TestAOSDegenerateShapes covers the no-op shapes of the conversion: a
// single structure (count==1) and a single field (fields==1) are both
// already their own transpose — a 1×n or n×1 matrix — so conversion
// must leave the buffer bit-identical in either direction.
func TestAOSDegenerateShapes(t *testing.T) {
	for _, tc := range []struct {
		name          string
		count, fields int
	}{
		{"one structure", 1, 17},
		{"one field", 1024, 1},
		{"single element", 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.count * tc.fields
			data := make([]uint64, n)
			orig := make([]uint64, n)
			for i := range data {
				data[i] = uint64(i)*0x9e3779b97f4a7c15 + 7
				orig[i] = data[i]
			}
			if err := AOSToSOA(data, tc.count, tc.fields); err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if data[i] != orig[i] {
					t.Fatalf("AOSToSOA(count=%d, fields=%d) changed element %d", tc.count, tc.fields, i)
				}
			}
			if err := SOAToAOS(data, tc.count, tc.fields); err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if data[i] != orig[i] {
					t.Fatalf("SOAToAOS(count=%d, fields=%d) changed element %d", tc.count, tc.fields, i)
				}
			}
		})
	}
}

// TestAOSSharedValidation pins the deduplicated helper: both directions
// reject the same malformed arguments with the same typed errors.
func TestAOSSharedValidation(t *testing.T) {
	for name, call := range map[string]func([]int, int, int) error{
		"AOSToSOA": func(d []int, c, f int) error { return AOSToSOA(d, c, f) },
		"SOAToAOS": func(d []int, c, f int) error { return SOAToAOS(d, c, f) },
	} {
		if err := call(make([]int, 6), 0, 3); err == nil {
			t.Errorf("%s accepted count=0", name)
		}
		if err := call(make([]int, 6), 2, -3); err == nil {
			t.Errorf("%s accepted fields=-3", name)
		}
		if err := call(make([]int, 5), 2, 3); err == nil {
			t.Errorf("%s accepted a short buffer", name)
		}
		if err := call(nil, 1, 1); err == nil {
			t.Errorf("%s accepted a nil buffer for 1x1", name)
		}
	}
}
