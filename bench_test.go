package inplace_test

// One Go benchmark per table and figure of the paper's evaluation. These
// give stable per-target numbers under `go test -bench`; the full
// distributions (histograms, landscapes, CSVs) come from cmd/benchsuite,
// which sweeps the randomized workloads.

import (
	"fmt"
	"testing"

	"inplace"
	"inplace/internal/baseline"
	"inplace/internal/bench"
	"inplace/internal/memsim"
	"inplace/internal/simd"
)

// Representative shape for the CPU comparison, inside the paper's
// [1000, 10000) range and large enough (~350 MB) to exceed even the
// oversized last-level caches of virtualized hosts — the regime in which
// the paper's locality comparison is meaningful.
const cpuM, cpuN = 6999, 6200

func fillU64(x []uint64) {
	for i := range x {
		x[i] = uint64(i)
	}
}

func fillU32(x []uint32) {
	for i := range x {
		x[i] = uint32(i)
	}
}

// BenchmarkTable1 regenerates Table 1 (and the Figure 3 contenders) at a
// fixed representative size.
func BenchmarkTable1MKLAlikeCycleFollow(b *testing.B) {
	data := make([]uint64, cpuM*cpuN)
	fillU64(data)
	b.SetBytes(int64(2 * cpuM * cpuN * 8))
	for i := 0; i < b.N; i++ {
		baseline.CycleFollowBits(data, cpuM, cpuN)
	}
}

func BenchmarkTable1C2RSequential(b *testing.B) {
	data := make([]uint64, cpuM*cpuN)
	fillU64(data)
	b.SetBytes(int64(2 * cpuM * cpuN * 8))
	o := inplace.Options{Method: inplace.CacheAware, Workers: 1}
	for i := 0; i < b.N; i++ {
		if err := inplace.TransposeWith(data, cpuM, cpuN, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1C2RParallel(b *testing.B) {
	data := make([]uint64, cpuM*cpuN)
	fillU64(data)
	b.SetBytes(int64(2 * cpuM * cpuN * 8))
	o := inplace.Options{Method: inplace.CacheAware}
	for i := 0; i < b.N; i++ {
		if err := inplace.TransposeWith(data, cpuM, cpuN, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Gustavson(b *testing.B) {
	data := make([]uint64, cpuM*cpuN)
	fillU64(data)
	b.SetBytes(int64(2 * cpuM * cpuN * 8))
	for i := 0; i < b.N; i++ {
		baseline.Gustavson(data, cpuM, cpuN, baseline.GustavsonOpts{})
	}
}

// BenchmarkFig4 / BenchmarkFig5 sample the performance landscapes at
// shape classes from the paper's bands: small-n (C2R's fast band),
// square, and small-m (R2C's fast band).
func landscapeBench(b *testing.B, m, n int, dir inplace.Direction) {
	data := make([]uint64, m*n)
	fillU64(data)
	b.SetBytes(int64(2 * m * n * 8))
	o := inplace.Options{Method: inplace.CacheAware, Direction: dir}
	for i := 0; i < b.N; i++ {
		if err := inplace.TransposeWith(data, m, n, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4C2RLandscape(b *testing.B) {
	for _, sh := range [][2]int{{1536, 96}, {768, 768}, {96, 1536}} {
		b.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(b *testing.B) {
			landscapeBench(b, sh[0], sh[1], inplace.ForceC2R)
		})
	}
}

func BenchmarkFig5R2CLandscape(b *testing.B) {
	for _, sh := range [][2]int{{1536, 96}, {768, 768}, {96, 1536}} {
		b.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(b *testing.B) {
			landscapeBench(b, sh[0], sh[1], inplace.ForceR2C)
		})
	}
}

// BenchmarkTable2 regenerates the Figure 6 / Table 2 contenders.
func BenchmarkTable2SungFloat(b *testing.B) {
	m, n := 1000, 864
	data := make([]uint32, m*n)
	fillU32(data)
	b.SetBytes(int64(2 * m * n * 4))
	for i := 0; i < b.N; i++ {
		baseline.Sung32(data, m, n, baseline.SungOpts{})
	}
}

func BenchmarkTable2C2RFloat(b *testing.B) {
	m, n := 1000, 864
	data := make([]uint32, m*n)
	fillU32(data)
	b.SetBytes(int64(2 * m * n * 4))
	for i := 0; i < b.N; i++ {
		if err := inplace.Transpose(data, m, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2C2RDouble(b *testing.B) {
	m, n := 1000, 864
	data := make([]uint64, m*n)
	fillU64(data)
	b.SetBytes(int64(2 * m * n * 8))
	for i := 0; i < b.N; i++ {
		if err := inplace.Transpose(data, m, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the AoS->SoA conversion at the structure
// sizes of Figure 7's distribution.
func BenchmarkFig7AoSToSoA(b *testing.B) {
	for _, fields := range []int{2, 8, 31} {
		count := 400_000 / fields * fields
		b.Run(fmt.Sprintf("fields%d", fields), func(b *testing.B) {
			data := make([]uint64, count*fields)
			fillU64(data)
			b.SetBytes(int64(2 * count * fields * 8))
			for i := 0; i < b.N; i++ {
				if err := inplace.AOSToSOA(data, count, fields); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8 / BenchmarkFig9 run the modeled SIMD access patterns and
// report the modeled bandwidth as a custom metric alongside the
// simulator's own speed.
func simdModelBench(b *testing.B, kind simd.AccessKind, random bool, store bool) {
	const W, K, structs = 32, 8, 4096
	mem := memsim.New(memsim.K20c())
	w := simd.NewWarp(W, K, mem)
	plan := simd.PlanFor(w)
	data := make([]uint64, structs*K)
	idx := make([]int, W)
	rng := bench.NewRNG(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if random {
			for l := range idx {
				idx[l] = rng.Intn(structs)
			}
		} else {
			base := (i * W) % (structs - W + 1)
			for l := range idx {
				idx[l] = base + l
			}
		}
		switch {
		case store && kind == simd.AccessC2R:
			simd.CoalescedStore(w, plan, data, idx)
		case store && kind == simd.AccessDirect:
			simd.DirectStore(w, data, idx)
		case store && kind == simd.AccessVector:
			simd.VectorStore(w, data, idx)
		case kind == simd.AccessC2R:
			simd.CoalescedLoad(w, plan, data, idx)
		case kind == simd.AccessDirect:
			simd.DirectLoad(w, data, idx)
		default:
			simd.VectorLoad(w, data, idx)
		}
	}
	b.ReportMetric(mem.Stats().EffectiveGBps, "modelGB/s")
}

func BenchmarkFig8UnitStrideStore(b *testing.B) {
	for _, kind := range []simd.AccessKind{simd.AccessC2R, simd.AccessDirect, simd.AccessVector} {
		b.Run(kind.String(), func(b *testing.B) { simdModelBench(b, kind, false, true) })
	}
}

func BenchmarkFig8UnitStrideLoad(b *testing.B) {
	for _, kind := range []simd.AccessKind{simd.AccessC2R, simd.AccessDirect, simd.AccessVector} {
		b.Run(kind.String(), func(b *testing.B) { simdModelBench(b, kind, false, false) })
	}
}

func BenchmarkFig9RandomScatter(b *testing.B) {
	for _, kind := range []simd.AccessKind{simd.AccessC2R, simd.AccessDirect, simd.AccessVector} {
		b.Run(kind.String(), func(b *testing.B) { simdModelBench(b, kind, true, true) })
	}
}

func BenchmarkFig9RandomGather(b *testing.B) {
	for _, kind := range []simd.AccessKind{simd.AccessC2R, simd.AccessDirect, simd.AccessVector} {
		b.Run(kind.String(), func(b *testing.B) { simdModelBench(b, kind, true, false) })
	}
}

// BenchmarkAblationHeuristic quantifies the §5.2 direction heuristic
// against always-C2R and always-R2C on a shape where the choice matters.
func BenchmarkAblationHeuristic(b *testing.B) {
	m, n := 1500, 6000 // out-of-cache, 4:1 aspect: C2R's fast regime; the heuristic must pick it
	for _, cfg := range []struct {
		name string
		dir  inplace.Direction
	}{
		{"always-c2r", inplace.ForceC2R},
		{"always-r2c", inplace.ForceR2C},
		{"heuristic", inplace.HeuristicDirection},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			data := make([]uint64, m*n)
			fillU64(data)
			b.SetBytes(int64(2 * m * n * 8))
			o := inplace.Options{Method: inplace.CacheAware, Direction: cfg.dir}
			for i := 0; i < b.N; i++ {
				if err := inplace.TransposeWith(data, m, n, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Plan reuse (the Planner API's amortization claim) ---
//
// The reuse benchmarks measure the same transpose twice: cold builds a
// fresh Planner every iteration (planning arithmetic, scratch
// allocation, and for skinny shapes the O(m) cycle decomposition all on
// the critical path), reused executes one prebuilt Planner. The gap is
// the amortized cost the plan cache removes from TransposeWith; the
// reused benchmarks must also report 0 allocs/op.

// planReuseM×planReuseN is the acceptance shape: a million 4-field
// structures, the AoS↔SoA workload of §6 where planning (cycle
// decomposition of q over 10^6 rows) is a large fraction of one
// transpose.
const planReuseM, planReuseN = 1_000_000, 4

var planReuseOpts = inplace.Options{
	Workers:   1,
	Method:    inplace.SkinnyMethod,
	Direction: inplace.ForceC2R,
}

func BenchmarkPlanReuseColdSkinny(b *testing.B) {
	data := make([]uint64, planReuseM*planReuseN)
	fillU64(data)
	b.SetBytes(int64(2 * planReuseM * planReuseN * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := inplace.NewPlanner[uint64](planReuseM, planReuseN, planReuseOpts)
		if err != nil {
			b.Fatal(err)
		}
		if err := pl.Execute(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanReuseWarmSkinny(b *testing.B) {
	data := make([]uint64, planReuseM*planReuseN)
	fillU64(data)
	pl, err := inplace.NewPlanner[uint64](planReuseM, planReuseN, planReuseOpts)
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Execute(data); err != nil { // warm arena and cycle cache
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * planReuseM * planReuseN * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pl.Execute(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanReuseColdCacheAware(b *testing.B) {
	const m, n = 512, 384
	data := make([]uint64, m*n)
	fillU64(data)
	b.SetBytes(int64(2 * m * n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := inplace.NewPlanner[uint64](m, n, inplace.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := pl.Execute(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanReuseWarmCacheAware(b *testing.B) {
	const m, n = 512, 384
	data := make([]uint64, m*n)
	fillU64(data)
	pl, err := inplace.NewPlanner[uint64](m, n, inplace.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Execute(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * m * n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pl.Execute(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanReuseBatch measures the cached-planner batch path: many
// tiny matrices, where per-call planning would dominate the actual data
// movement.
func BenchmarkPlanReuseBatch(b *testing.B) {
	const count, m, n = 4096, 31, 7
	data := make([]uint64, count*m*n)
	fillU64(data)
	b.SetBytes(int64(2 * count * m * n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inplace.TransposeBatch(data, count, m, n); err != nil {
			b.Fatal(err)
		}
	}
}
